"""Execution plans and their executor.

The optimizer (Figure 8 of the paper) outputs an :class:`ExecutionPlan` —
which query type runs against which index type, whether the window cache
seeds the search and whether an attribute filter applies.  The
:class:`PlanExecutor` carries a plan out against the per-head index data of
one layer and returns the selected critical-token positions together with
work statistics, which the latency model converts into modelled seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanningError, UnsupportedQueryError
from ..index.coarse import CoarseBlockIndex
from ..index.flat import FlatIndex
from ..index.roargraph import RoarGraphIndex
from ..query.dipr import FrontierScratch, diprs_search, diprs_search_group, exact_dipr
from ..query.filtered import filtered_diprs_search, filtered_diprs_search_group, predicate_mask
from ..query.topk import graph_topk_search
from ..query.types import DIPRQuery, FilterPredicate, IndexKind, QueryKind, TopKQuery

__all__ = ["ExecutionPlan", "RetrievalOutcome", "LayerIndexData", "PlanExecutor"]


@dataclass(frozen=True)
class ExecutionPlan:
    """One layer's retrieval strategy chosen by the optimizer."""

    query_kind: str
    index_kind: str | None
    query: TopKQuery | DIPRQuery | None = None
    predicate: FilterPredicate | None = None
    use_window_seed: bool = True

    @property
    def is_full_attention(self) -> bool:
        return self.query_kind == QueryKind.FULL

    def describe(self) -> str:
        """Human-readable one-liner (shown by the examples and benchmarks)."""
        if self.is_full_attention:
            return "full attention"
        parts = [f"{self.query_kind} over {self.index_kind} index"]
        if isinstance(self.query, DIPRQuery):
            parts.append(f"beta={self.query.beta:.2f}")
        if isinstance(self.query, TopKQuery):
            parts.append(f"k={self.query.k}")
        if self.predicate is not None:
            parts.append(f"filter<{self.predicate.max_position}")
        return ", ".join(parts)


@dataclass
class RetrievalOutcome:
    """Positions selected for one head plus the work it took to find them."""

    positions: np.ndarray
    scores: np.ndarray
    num_distance_computations: int
    num_candidates: int
    num_hops: int = 0
    """Graph hops the retrieval walked (0 for the scan-based index kinds).
    Group-frontier retrieval attributes its shared walk to the group's first
    head, so summing over heads never double-counts shared work."""

    @property
    def num_selected(self) -> int:
        return int(self.positions.shape[0])


@dataclass
class LayerIndexData:
    """Everything the executor may need about one layer of a stored context.

    Not every field is populated: the flat path only needs ``keys``; the fine
    path needs the per-KV-head RoarGraph indexes; the coarse path needs the
    block indexes.
    """

    keys: np.ndarray
    """Key vectors ``(num_kv_heads, n, head_dim)`` of the stored context."""

    fine_indexes: list[RoarGraphIndex] | None = None
    """One RoarGraph per KV head (GQA-shared) or per query head."""

    coarse_indexes: list[CoarseBlockIndex] | None = None
    """One coarse block index per KV head."""

    flat_indexes: list[FlatIndex] = field(default_factory=list)
    """Lazily-created flat indexes per KV head."""

    shared: bool = True
    gqa_group_size: int = 1

    position_offset: int = 0
    """Global position of this data's first token.  A shard of a context
    carries its token-range start here so every retrieval outcome reports
    positions in the *global* token space of the full context; predicates,
    window seeds and the index structures themselves stay shard-local."""

    def to_global(self, positions: np.ndarray) -> np.ndarray:
        """Map local retrieval positions into global token space."""
        if self.position_offset == 0:
            return positions
        return positions + np.int64(self.position_offset)

    def fine_index_for_query_head(self, query_head: int) -> RoarGraphIndex:
        if not self.fine_indexes:
            raise PlanningError("fine-grained indexes are not available for this layer")
        if self.shared:
            return self.fine_indexes[query_head // self.gqa_group_size]
        return self.fine_indexes[query_head]

    def kv_head_for_query_head(self, query_head: int) -> int:
        return query_head // self.gqa_group_size

    def flat_index_for_kv_head(self, kv_head: int) -> FlatIndex:
        while len(self.flat_indexes) <= kv_head:
            self.flat_indexes.append(FlatIndex())
        index = self.flat_indexes[kv_head]
        if not index.is_built:
            index.build(self.keys[kv_head])
        return index

    def coarse_index_for_kv_head(self, kv_head: int) -> CoarseBlockIndex:
        if not self.coarse_indexes:
            raise PlanningError("coarse indexes are not available for this layer")
        return self.coarse_indexes[kv_head]


class PlanExecutor:
    """Executes an :class:`ExecutionPlan` for one query head or a whole layer."""

    def __init__(self, coarse_num_blocks: int = 32, fine_frontier_batching: bool = True):
        self.coarse_num_blocks = coarse_num_blocks
        self.fine_frontier_batching = fine_frontier_batching
        #: reusable visited-bitmap scratch shared by every group-frontier walk
        #: this executor dispatches (one decode round may run many walks)
        self._scratch = FrontierScratch()

    def retrieve(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        query_head: int,
        query: np.ndarray,
        window_max_score: float | None = None,
    ) -> RetrievalOutcome:
        """Run ``plan`` for one query head and return the selected positions."""
        if plan.is_full_attention:
            raise PlanningError("full-attention plans are executed by the attention engine, not retrieval")
        kv_head = data.kv_head_for_query_head(query_head)
        num_tokens = data.keys.shape[1]

        if plan.index_kind == IndexKind.FLAT:
            return self._retrieve_flat(plan, data, kv_head, query, num_tokens)
        if plan.index_kind == IndexKind.FINE:
            return self._retrieve_fine(plan, data, query_head, query, window_max_score, num_tokens)
        if plan.index_kind == IndexKind.COARSE:
            return self._retrieve_coarse(plan, data, kv_head, query)
        raise UnsupportedQueryError(f"unknown index kind {plan.index_kind!r}")

    def retrieve_heads(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        queries: np.ndarray,
        window_max_scores: np.ndarray | None = None,
        kv_head_of_query: np.ndarray | None = None,
    ) -> list[RetrievalOutcome]:
        """Run ``plan`` for every query head of one layer in one call.

        ``queries`` is ``(num_query_heads, head_dim)`` and
        ``window_max_scores`` the per-head window seeds.  The scan-based index
        kinds share their per-KV-head work across the GQA group: the flat path
        computes one ``(g, d) @ (d, n)`` score matrix per group instead of
        ``g`` separate scans, and the coarse path shares the
        query-to-representative matmul the same way.  Fine DIPR retrieval over
        GQA-shared indexes walks each group's RoarGraph once with the
        group-frontier search (``fine_frontier_batching``); other fine cases
        fall back to one traversal per head, vectorized at the hop level
        inside ``diprs_search``.  Entry ``h`` matches :meth:`retrieve` for
        query head ``h``.

        ``kv_head_of_query`` is the multi-session entry point: when a decode
        round stacks several sessions' query heads over one shared context,
        it maps each stacked row to its KV head (the default ``row //
        gqa_group_size`` only holds for a single session's heads).  All rows
        probing one KV head — across every stacked session — then share a
        single scan, which is the cross-request retrieval gemm.  Only the
        scan-based kinds accept the mapping; fine walks stay per session and
        are dispatched by the round coordinator.
        """
        if plan.is_full_attention:
            raise PlanningError("full-attention plans are executed by the attention engine, not retrieval")
        queries = np.asarray(queries, dtype=np.float32)
        num_heads = queries.shape[0]
        num_tokens = data.keys.shape[1]
        if window_max_scores is not None:
            window_max_scores = np.asarray(window_max_scores, dtype=np.float32)
            if window_max_scores.shape != (num_heads,):
                # a (g, 1) array would silently index as 1-element rows and
                # feed every search a wrong (or deprecation-coerced) seed
                raise ValueError(
                    f"window_max_scores must have shape ({num_heads},) — one seed "
                    f"per query head — got {window_max_scores.shape}"
                )
        if kv_head_of_query is not None:
            kv_head_of_query = np.asarray(kv_head_of_query, dtype=np.int64)
            if kv_head_of_query.shape != (num_heads,):
                raise ValueError(
                    f"kv_head_of_query must have shape ({num_heads},), "
                    f"got {kv_head_of_query.shape}"
                )

        if plan.index_kind == IndexKind.FLAT:
            return self._retrieve_flat_heads(plan, data, queries, num_tokens, kv_head_of_query)
        if plan.index_kind == IndexKind.COARSE:
            return self._retrieve_coarse_heads(plan, data, queries, kv_head_of_query)
        if plan.index_kind == IndexKind.FINE:
            if kv_head_of_query is not None:
                raise UnsupportedQueryError(
                    "stacked fine retrieval is dispatched per session by the "
                    "decode round; kv_head_of_query only applies to the "
                    "scan-based index kinds"
                )
            return self._retrieve_fine_heads(plan, data, queries, window_max_scores, num_tokens)
        raise UnsupportedQueryError(f"unknown index kind {plan.index_kind!r}")

    def _retrieve_fine_heads(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        queries: np.ndarray,
        window_max_scores: np.ndarray | None,
        num_tokens: int,
    ) -> list[RetrievalOutcome]:
        num_heads = queries.shape[0]
        use_group = (
            self.fine_frontier_batching
            and isinstance(plan.query, DIPRQuery)
            and data.shared
            and data.gqa_group_size > 1
        )
        if not use_group:
            outcomes = []
            for head in range(num_heads):
                seed = None if window_max_scores is None else float(window_max_scores[head])
                outcomes.append(
                    self._retrieve_fine(plan, data, head, queries[head], seed, num_tokens)
                )
            return outcomes

        outcomes: list[RetrievalOutcome | None] = [None] * num_heads
        for kv_head, heads in self._heads_by_kv_head(data, num_heads).items():
            index = data.fine_index_for_query_head(heads[0])
            seeds = None
            if plan.use_window_seed and window_max_scores is not None:
                seeds = window_max_scores[heads]
            if plan.predicate is not None:
                results, stats = filtered_diprs_search_group(
                    index.vectors,
                    index.graph,
                    queries[heads],
                    plan.query.beta,
                    [index.entry_point],
                    plan.predicate,
                    capacity_threshold=plan.query.capacity_threshold,
                    window_max_scores=seeds,
                    max_tokens=plan.query.max_tokens,
                    scratch=self._scratch,
                )
            else:
                results, stats = diprs_search_group(
                    index.vectors,
                    index.graph,
                    queries[heads],
                    plan.query.beta,
                    [index.entry_point],
                    capacity_threshold=plan.query.capacity_threshold,
                    window_max_scores=seeds,
                    max_tokens=plan.query.max_tokens,
                    scratch=self._scratch,
                )
            for slot, (head, result) in enumerate(zip(heads, results)):
                # the walk is shared: attribute its distance computations and
                # hops to the group's first head so per-head outcomes sum to
                # the group's real (deduplicated) work
                outcomes[head] = RetrievalOutcome(
                    data.to_global(result.indices),
                    result.scores,
                    stats.num_distance_computations if slot == 0 else 0,
                    len(result),
                    num_hops=stats.num_hops if slot == 0 else 0,
                )
        return outcomes

    def _heads_by_kv_head(
        self,
        data: LayerIndexData,
        num_heads: int,
        kv_head_of_query: np.ndarray | None = None,
    ) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for head in range(num_heads):
            if kv_head_of_query is not None:
                kv_head = int(kv_head_of_query[head])
            else:
                kv_head = data.kv_head_for_query_head(head)
            groups.setdefault(kv_head, []).append(head)
        return groups

    def _retrieve_flat_heads(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        queries: np.ndarray,
        num_tokens: int,
        kv_head_of_query: np.ndarray | None = None,
    ) -> list[RetrievalOutcome]:
        allowed = predicate_mask(num_tokens, plan.predicate)
        outcomes: list[RetrievalOutcome | None] = [None] * queries.shape[0]
        for kv_head, heads in self._heads_by_kv_head(data, queries.shape[0], kv_head_of_query).items():
            index = data.flat_index_for_kv_head(kv_head)
            if isinstance(plan.query, DIPRQuery):
                results = index.search_range_batch(queries[heads], plan.query.beta, allowed=allowed)
                if plan.query.max_tokens is not None:
                    results = [result.top(plan.query.max_tokens) for result in results]
            elif isinstance(plan.query, TopKQuery):
                results = index.search_topk_batch(queries[heads], plan.query.k, allowed=allowed)
            else:
                raise UnsupportedQueryError(f"flat index cannot process {plan.query!r}")
            for head, result in zip(heads, results):
                outcomes[head] = RetrievalOutcome(
                    data.to_global(result.indices),
                    result.scores,
                    result.num_distance_computations,
                    len(result),
                )
        return outcomes

    def _retrieve_coarse_heads(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        queries: np.ndarray,
        kv_head_of_query: np.ndarray | None = None,
    ) -> list[RetrievalOutcome]:
        if isinstance(plan.query, DIPRQuery):
            raise UnsupportedQueryError("the coarse index does not support DIPR queries (Table 4)")
        if not isinstance(plan.query, TopKQuery):
            raise UnsupportedQueryError(f"coarse index cannot process {plan.query!r}")
        outcomes: list[RetrievalOutcome | None] = [None] * queries.shape[0]
        for kv_head, heads in self._heads_by_kv_head(data, queries.shape[0], kv_head_of_query).items():
            index = data.coarse_index_for_kv_head(kv_head)
            num_blocks = max(1, min(self.coarse_num_blocks, index.num_blocks))
            per_head_positions = index.selected_positions_batch(queries[heads], num_blocks)
            distance_computations = index.num_blocks * index.num_representatives
            if plan.predicate is not None:
                per_head_positions = [
                    positions[positions < plan.predicate.max_position]
                    for positions in per_head_positions
                ]
            lengths = {positions.shape[0] for positions in per_head_positions}
            if len(lengths) == 1 and next(iter(lengths)) > 0:
                # every head selected the same number of tokens (the common
                # case: equal-size blocks, no predicate truncation): score the
                # whole group with one gathered einsum
                stacked = np.stack(per_head_positions)
                gathered = index.vectors[stacked]
                group_scores = np.einsum("gd,gmd->gm", queries[heads], gathered).astype(np.float32)
            else:
                group_scores = [
                    (index.vectors[positions] @ queries[head]).astype(np.float32)
                    for head, positions in zip(heads, per_head_positions)
                ]
            for slot, (head, positions) in enumerate(zip(heads, per_head_positions)):
                outcomes[head] = RetrievalOutcome(
                    data.to_global(positions), group_scores[slot], distance_computations, len(positions)
                )
        return outcomes

    # ------------------------------------------------------------------
    # per-index-kind paths
    # ------------------------------------------------------------------
    def _retrieve_flat(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        kv_head: int,
        query: np.ndarray,
        num_tokens: int,
    ) -> RetrievalOutcome:
        index = data.flat_index_for_kv_head(kv_head)
        allowed = predicate_mask(num_tokens, plan.predicate)
        if isinstance(plan.query, DIPRQuery):
            result = index.search_range(query, plan.query.beta, allowed=allowed)
            if plan.query.max_tokens is not None:
                result = result.top(plan.query.max_tokens)
        elif isinstance(plan.query, TopKQuery):
            result = index.search_topk(query, plan.query.k, allowed=allowed)
        else:
            raise UnsupportedQueryError(f"flat index cannot process {plan.query!r}")
        return RetrievalOutcome(
            data.to_global(result.indices), result.scores, result.num_distance_computations, len(result)
        )

    def _retrieve_fine(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        query_head: int,
        query: np.ndarray,
        window_max_score: float | None,
        num_tokens: int,
    ) -> RetrievalOutcome:
        index = data.fine_index_for_query_head(query_head)
        seed = window_max_score if plan.use_window_seed else None
        if isinstance(plan.query, DIPRQuery):
            if plan.predicate is not None:
                result, stats = filtered_diprs_search(
                    index.vectors,
                    index.graph,
                    query,
                    plan.query.beta,
                    [index.entry_point],
                    plan.predicate,
                    capacity_threshold=plan.query.capacity_threshold,
                    window_max_score=seed,
                    max_tokens=plan.query.max_tokens,
                )
            else:
                result, stats = diprs_search(
                    index.vectors,
                    index.graph,
                    query,
                    plan.query.beta,
                    [index.entry_point],
                    capacity_threshold=plan.query.capacity_threshold,
                    window_max_score=seed,
                    max_tokens=plan.query.max_tokens,
                )
            return RetrievalOutcome(
                data.to_global(result.indices),
                result.scores,
                stats.num_distance_computations,
                len(result),
                num_hops=stats.num_hops,
            )
        if isinstance(plan.query, TopKQuery):
            allowed = predicate_mask(num_tokens, plan.predicate)
            result = graph_topk_search(
                index.vectors,
                index.graph,
                query,
                plan.query.k,
                [index.entry_point],
                ef=plan.query.ef,
                allowed=allowed,
            )
            return RetrievalOutcome(
                data.to_global(result.indices), result.scores, result.num_distance_computations, len(result)
            )
        raise UnsupportedQueryError(f"fine index cannot process {plan.query!r}")

    def _retrieve_coarse(
        self,
        plan: ExecutionPlan,
        data: LayerIndexData,
        kv_head: int,
        query: np.ndarray,
    ) -> RetrievalOutcome:
        if isinstance(plan.query, DIPRQuery):
            raise UnsupportedQueryError("the coarse index does not support DIPR queries (Table 4)")
        index = data.coarse_index_for_kv_head(kv_head)
        if isinstance(plan.query, TopKQuery):
            num_blocks = max(1, min(self.coarse_num_blocks, index.num_blocks))
            positions = index.selected_positions(query, num_blocks)
            if plan.predicate is not None:
                positions = positions[positions < plan.predicate.max_position]
            scores = index.vectors[positions] @ np.asarray(query, dtype=np.float32)
            distance_computations = index.num_blocks * index.num_representatives
            return RetrievalOutcome(
                data.to_global(positions), scores.astype(np.float32), distance_computations, len(positions)
            )
        raise UnsupportedQueryError(f"coarse index cannot process {plan.query!r}")
