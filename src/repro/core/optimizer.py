"""The rule-based query optimizer (Figure 8 of the paper).

Given a context and the serving constraints, the optimizer picks an execution
plan per layer:

1. *Short contexts* are answered with full attention — retrieval overhead
   would dominate any savings.
2. *Partial prefix reuse* attaches an attribute-filter predicate carrying the
   reused prefix length.
3. With a *large GPU memory budget* the whole context's blocks fit on the
   GPU, so the coarse block index with a top-k query (the InfLLM execution
   path) gives the lowest latency.
4. With a *limited budget* the optimizer selects the DIPR query; the first
   layer (which needs a large number of critical tokens, Figure 5) runs it on
   the flat index, every other layer on the fine-grained graph index.

Both the query-type and index-type sets are extensible: registering a new
rule ahead of the defaults lets deployments specialise the decision without
forking the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..query.types import DIPRQuery, FilterPredicate, IndexKind, QueryKind, TopKQuery
from .config import AlayaDBConfig
from .planner import ExecutionPlan

__all__ = ["QueryContext", "RuleBasedOptimizer", "OptimizerRule"]


@dataclass(frozen=True)
class QueryContext:
    """Everything the optimizer may inspect when planning one layer."""

    context_length: int
    layer: int
    head_dim: int
    num_kv_heads: int
    num_layers: int
    reused_prefix_length: int | None = None
    gpu_memory_budget_bytes: int | None = None
    kv_bytes_per_token: int = 0

    @property
    def is_partial_reuse(self) -> bool:
        return (
            self.reused_prefix_length is not None
            and 0 < self.reused_prefix_length < self.context_length
        )


OptimizerRule = Callable[[QueryContext, AlayaDBConfig], ExecutionPlan | None]
"""A rule inspects the query context and either returns a plan or defers."""


class RuleBasedOptimizer:
    """Applies an ordered list of rules; the first plan returned wins."""

    def __init__(self, config: AlayaDBConfig | None = None):
        self.config = config or AlayaDBConfig()
        self._rules: list[OptimizerRule] = [
            self._rule_short_context,
            self._rule_coarse_when_budget_allows,
            self._rule_dipr_by_layer,
        ]

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    def register_rule(self, rule: OptimizerRule, priority: int = 0) -> None:
        """Insert a custom rule; ``priority`` is the index in the rule list."""
        self._rules.insert(priority, rule)

    def plan(self, query_context: QueryContext) -> ExecutionPlan:
        """Produce the execution plan for one layer of one context."""
        for rule in self._rules:
            plan = rule(query_context, self.config)
            if plan is not None:
                return plan
        # unreachable with the default rules, but a safe fallback regardless
        return ExecutionPlan(query_kind=QueryKind.FULL, index_kind=None)

    def plan_all_layers(self, query_context: QueryContext) -> dict[int, ExecutionPlan]:
        """Plans for every layer of the model serving this context.

        The per-layer contexts are derived with :func:`dataclasses.replace`
        so every field of ``query_context`` — including ones added later —
        reaches the per-layer planning unchanged.
        """
        return {
            layer: self.plan(replace(query_context, layer=layer))
            for layer in range(query_context.num_layers)
        }

    # ------------------------------------------------------------------
    # helpers shared by the rules
    # ------------------------------------------------------------------
    def _predicate(self, query_context: QueryContext) -> FilterPredicate | None:
        if query_context.is_partial_reuse:
            return FilterPredicate(max_position=query_context.reused_prefix_length)
        return None

    def _dipr_query(self, query_context: QueryContext) -> DIPRQuery:
        return DIPRQuery(
            beta=self.config.scaled_beta(query_context.head_dim),
            capacity_threshold=self.config.dipr_capacity_threshold,
            max_tokens=self.config.max_retrieved_tokens,
        )

    # ------------------------------------------------------------------
    # default rules, in priority order
    # ------------------------------------------------------------------
    def _rule_short_context(self, query_context: QueryContext, config: AlayaDBConfig) -> ExecutionPlan | None:
        if query_context.context_length <= config.short_context_threshold:
            return ExecutionPlan(query_kind=QueryKind.FULL, index_kind=None)
        return None

    def _rule_coarse_when_budget_allows(self, query_context: QueryContext, config: AlayaDBConfig) -> ExecutionPlan | None:
        budget = query_context.gpu_memory_budget_bytes
        if budget is None:
            budget = config.gpu_memory_budget_bytes
        bytes_per_token = query_context.kv_bytes_per_token
        if bytes_per_token <= 0:
            # derive from the model shape (K + V, float32, every layer): the
            # unset-field default used to degenerate to 1 byte/token, which
            # made any context look within budget and the DIPR rule
            # unreachable for direct QueryContext users
            bytes_per_token = (
                2 * query_context.num_kv_heads * query_context.head_dim * 4 * query_context.num_layers
            )
        required = query_context.context_length * bytes_per_token
        if required > budget:
            return None
        return ExecutionPlan(
            query_kind=QueryKind.TOP_K,
            index_kind=IndexKind.COARSE,
            query=TopKQuery(k=config.topk_k),
            predicate=self._predicate(query_context),
        )

    def _rule_dipr_by_layer(self, query_context: QueryContext, config: AlayaDBConfig) -> ExecutionPlan | None:
        index_kind = IndexKind.FLAT if query_context.layer in config.flat_index_layers else IndexKind.FINE
        return ExecutionPlan(
            query_kind=QueryKind.DIPR,
            index_kind=index_kind,
            query=self._dipr_query(query_context),
            predicate=self._predicate(query_context),
        )
