"""The ``Session`` abstraction: a running inference request connected to contexts.

A session plays the role HuggingFace's ``DynamicCache`` plays in the coupled
architecture (Figure 4 of the paper): the model pushes Q/K/V into it per layer
and asks it for attention outputs.  Unlike ``DynamicCache`` the session

* may be *connected to a stored context* whose KV cache and vector indexes are
  reused instead of recomputed (prefix reuse),
* keeps newly generated KV in a small **local cache** rather than inserting it
  into the index immediately (late materialization, Section 7.2),
* answers decode-time attention with the **sparse** data-centric engine,
  retrieving critical tokens through the plan selected by the optimizer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import SessionClosedError
from ..kvcache.cache import LayerKVCache
from ..llm.attention import full_attention
from .attention_engine import DataCentricAttentionEngine
from .config import AlayaDBConfig
from .context_store import StoredContext
from .optimizer import QueryContext, RuleBasedOptimizer
from ..query.types import IndexKind
from .planner import ExecutionPlan, LayerIndexData, PlanExecutor
from .window_cache import WindowCache

__all__ = ["DecodeStepStats", "SparseLayerInputs", "Session", "decode_stats_from"]


@dataclass
class DecodeStepStats:
    """Work performed by the last decode step (summed over layers and heads)."""

    num_selected_tokens: int = 0
    num_distance_computations: int = 0
    num_graph_hops: int = 0
    """Fine-index traversal hops; shared group-frontier walks count once per
    GQA group (the executor attributes them to the group's first head)."""
    num_window_tokens: int = 0
    num_local_tokens: int = 0
    num_heads: int = 0

    def merge(self, other: "DecodeStepStats") -> None:
        self.num_selected_tokens += other.num_selected_tokens
        self.num_distance_computations += other.num_distance_computations
        self.num_graph_hops += other.num_graph_hops
        self.num_window_tokens += other.num_window_tokens
        self.num_local_tokens += other.num_local_tokens
        self.num_heads += other.num_heads

    @property
    def mean_selected_per_head(self) -> float:
        return self.num_selected_tokens / max(self.num_heads, 1)


@dataclass
class SparseLayerInputs:
    """Everything one layer's sparse decode needs, resolved once per step.

    Produced by :meth:`Session.sparse_layer_inputs` so that an external round
    coordinator (cross-request batching) and the session's own hot path build
    their retrieval + merge calls from the same resolved state.
    """

    plan: ExecutionPlan
    data: LayerIndexData
    prefix: int
    prefix_keys: np.ndarray
    prefix_values: np.ndarray
    window_positions: np.ndarray
    local_keys: np.ndarray
    local_values: np.ndarray

    @property
    def has_local(self) -> bool:
        return self.local_keys.shape[1] > 0


def decode_stats_from(outcomes, breakdowns) -> DecodeStepStats:
    """Fold per-head retrieval outcomes + attention breakdowns into step stats."""
    stats = DecodeStepStats()
    for outcome, breakdown in zip(outcomes, breakdowns):
        stats.num_selected_tokens += breakdown.num_retrieved_tokens
        stats.num_distance_computations += outcome.num_distance_computations
        stats.num_graph_hops += outcome.num_hops
        stats.num_window_tokens += breakdown.num_window_tokens
        stats.num_local_tokens += breakdown.num_local_tokens
        stats.num_heads += 1
    return stats


@dataclass
class _ModelDims:
    """Model shape inferred from the tensors flowing through the session."""

    num_query_heads: int
    num_kv_heads: int
    head_dim: int

    @property
    def gqa_group_size(self) -> int:
        return self.num_query_heads // self.num_kv_heads


class Session:
    """A connection between running inference and the stored contexts."""

    def __init__(
        self,
        config: AlayaDBConfig | None = None,
        context: StoredContext | None = None,
        reused_prefix_length: int = 0,
        num_layers: int | None = None,
        gpu_memory_budget_bytes: int | None = None,
        index_provider=None,
        on_close=None,
    ):
        self.config = config or AlayaDBConfig()
        self.context = context
        self.reused_prefix_length = int(reused_prefix_length) if context is not None else 0
        if context is not None and self.reused_prefix_length <= 0:
            self.reused_prefix_length = context.num_tokens
        self._num_layers = num_layers or (context.num_layers if context is not None else None)
        self.gpu_memory_budget_bytes = gpu_memory_budget_bytes
        self._index_provider = index_provider
        self._on_close = on_close

        self._closed = False
        self._dims: _ModelDims | None = None
        self._local: dict[int, LayerKVCache] = {}
        self._query_samples: dict[int, list[np.ndarray]] = {}
        self._plans: dict[int, ExecutionPlan] | None = None
        self._layer_data: dict[int, LayerIndexData] = {}

        self.window = WindowCache(self.config.window_initial_tokens, self.config.window_last_tokens)
        self.engine = DataCentricAttentionEngine()
        self.executor = PlanExecutor(
            coarse_num_blocks=self.config.coarse_num_blocks,
            fine_frontier_batching=self.config.fine_frontier_batching,
        )
        self.optimizer = RuleBasedOptimizer(self.config)
        self.last_decode_stats = DecodeStepStats()
        self.total_decode_stats = DecodeStepStats()
        self.num_decode_steps = 0
        self.decode_mode_override: str | None = None
        """``"dense"`` forces exact attention for decode steps (set per step
        by the dynamic attention policy); ``None`` leaves routing to the
        optimizer's plan."""
        self.timing_sink = None
        """Optional object with ``retrieval_seconds`` / ``merge_seconds``
        accumulators (a :class:`~repro.core.decode_round.StageTimings`); when
        set, the sparse decode path reports its per-stage wall time there."""

    # ------------------------------------------------------------------
    # lifecycle and introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def _require_open(self) -> None:
        if self._closed:
            raise SessionClosedError("this session has been closed")

    def detach_on_close(self):
        """Take ownership of the close callback (the stored-context unpin).

        Preemption releases the session's pin on its stored context while the
        session stays alive; detaching the callback keeps a later ``close()``
        from unpinning a second time — which would steal another session's
        pin on the same context.  Returns the callback (or ``None``).
        """
        callback, self._on_close = self._on_close, None
        return callback

    def attach_on_close(self, callback) -> None:
        """Re-attach a close callback (when a resumed request re-pins)."""
        self._on_close = callback

    def invalidate_context_caches(self) -> None:
        """Drop cached references into the stored context's KV arrays.

        Called when a preempted request resumes: its context may have been
        spilled and reloaded in between, replacing the snapshot's arrays, and
        the per-layer index data must be rebuilt against the fresh ones.
        """
        self._layer_data.clear()

    @property
    def is_connected(self) -> bool:
        """True when the session reuses a stored context."""
        return self.context is not None and self.reused_prefix_length > 0

    @property
    def num_layers(self) -> int:
        if self._num_layers is not None:
            return self._num_layers
        return max(self._local) + 1 if self._local else 0

    def local_length(self, layer: int = 0) -> int:
        cache = self._local.get(layer)
        return len(cache) if cache is not None else 0

    def sequence_length(self, layer: int = 0) -> int:
        """Total visible context length: reused prefix + locally appended tokens."""
        return self.reused_prefix_length + self.local_length(layer)

    @property
    def query_samples(self) -> dict[int, np.ndarray]:
        """Captured query vectors per layer, ``(num_query_heads, m, head_dim)``."""
        stacked: dict[int, np.ndarray] = {}
        for layer, samples in self._query_samples.items():
            stacked[layer] = np.concatenate(samples, axis=1) if samples else np.empty((0, 0, 0), dtype=np.float32)
        return stacked

    def local_snapshot(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Keys/values appended locally for ``layer`` (may be empty arrays)."""
        cache = self._local.get(layer)
        if cache is None:
            if self._dims is None:
                empty = np.empty((0, 0, 0), dtype=np.float32)
                return empty, empty
            empty = np.empty((self._dims.num_kv_heads, 0, self._dims.head_dim), dtype=np.float32)
            return empty, empty
        return cache.keys, cache.values

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def gpu_memory_bytes(self) -> int:
        """Bytes this session pins in (simulated) GPU memory.

        The window cache and the local (unmaterialised) KV stay on the GPU;
        the stored context's KV and indexes stay on CPU/disk, and only
        attention outputs cross the boundary.
        """
        if self._dims is None:
            return 0
        dims = self._dims
        layers = max(self.num_layers, 1)
        window_bytes = self.window.memory_bytes(
            self.reused_prefix_length, dims.num_kv_heads, dims.head_dim, layers
        )
        local_bytes = sum(cache.nbytes for cache in self._local.values())
        coarse_bytes = 0
        if self._plans:
            uses_coarse = any(plan.index_kind == "coarse" for plan in self._plans.values())
            if uses_coarse and self.context is not None:
                coarse_bytes = sum(
                    sum(index.memory_bytes for index in indexes)
                    for indexes in self.context.coarse_indexes.values()
                )
        return window_bytes + local_bytes + coarse_bytes

    # ------------------------------------------------------------------
    # cache-protocol surface (what the model calls)
    # ------------------------------------------------------------------
    def update_query(self, q: np.ndarray, k: np.ndarray, v: np.ndarray, layer: int) -> None:
        """Register new Q/K/V for ``layer`` (Table 2: ``Session.update``).

        Keys/values are appended to the local cache (late materialization);
        query vectors are sampled and kept so that ``DB.store`` can build the
        OOD-aware RoarGraph indexes later.
        """
        self._require_open()
        q = np.asarray(q, dtype=np.float32)
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        if self._dims is None:
            self._dims = _ModelDims(num_query_heads=q.shape[0], num_kv_heads=k.shape[0], head_dim=q.shape[2])
        cache = self._local.get(layer)
        if cache is None:
            cache = LayerKVCache(k.shape[0], k.shape[2])
            self._local[layer] = cache
        cache.append(k, v)
        self._query_samples.setdefault(layer, []).append(q.copy())

    def update(self, k: np.ndarray, v: np.ndarray, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """DynamicCache-compatible update: append and return the *full* KV.

        Provided for manual management (Table 2); the decoupled path uses
        :meth:`update_query` + :meth:`attention` instead and never
        materialises the full tensors.
        """
        self._require_open()
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        num_query_heads = k.shape[0] * (self._dims.gqa_group_size if self._dims else 1)
        if self._dims is None:
            self._dims = _ModelDims(num_query_heads=num_query_heads, num_kv_heads=k.shape[0], head_dim=k.shape[2])
        cache = self._local.get(layer)
        if cache is None:
            cache = LayerKVCache(k.shape[0], k.shape[2])
            self._local[layer] = cache
        cache.append(k, v)
        return self._materialized_kv(layer)

    # ------------------------------------------------------------------
    # attention
    # ------------------------------------------------------------------
    def attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        """Attention output for ``q`` at ``layer`` (Table 2: ``Session.attention``).

        ``q`` has shape ``(num_query_heads, seq, head_dim)``.  Multi-token
        queries (the prefill of the non-reused suffix) run exact causal
        attention; single-token queries (decode) run the sparse plan.
        """
        self._require_open()
        q = np.asarray(q, dtype=np.float32)
        if q.ndim != 3:
            raise ValueError(f"expected q of shape (heads, seq, head_dim), got {q.shape}")
        if q.shape[1] > 1 or not self._use_sparse_path(layer):
            return self._full_attention(q, layer)
        return self._sparse_attention(q, layer)

    def materialized_kv(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Full KV visible at ``layer``: stored prefix + locally appended.

        This is the late-materialization point ``DB.store`` reads when a
        session's accumulated state is persisted as a new context.
        """
        return self._materialized_kv(layer)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _materialized_kv(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Stored-prefix KV concatenated with the local KV for ``layer``."""
        local_keys, local_values = self.local_snapshot(layer)
        if self.context is not None and self.reused_prefix_length > 0 and layer in self.context.snapshot.keys:
            stored_keys = self.context.keys(layer)[:, : self.reused_prefix_length, :]
            stored_values = self.context.values(layer)[:, : self.reused_prefix_length, :]
            if local_keys.shape[1] == 0:
                return stored_keys, stored_values
            return (
                np.concatenate([stored_keys, local_keys], axis=1),
                np.concatenate([stored_values, local_values], axis=1),
            )
        return local_keys, local_values

    def _plans_for_context(self) -> dict[int, ExecutionPlan]:
        if self._plans is not None:
            return self._plans
        dims = self._dims
        kv_bytes_per_token = 0
        if dims is not None:
            kv_bytes_per_token = 2 * dims.num_kv_heads * dims.head_dim * 4 * max(self.num_layers, 1)
        query_context = QueryContext(
            context_length=self.sequence_length(0),
            layer=0,
            head_dim=dims.head_dim if dims else 1,
            num_kv_heads=dims.num_kv_heads if dims else 1,
            num_layers=max(self.num_layers, 1),
            reused_prefix_length=self.reused_prefix_length if self.is_connected else None,
            gpu_memory_budget_bytes=self.gpu_memory_budget_bytes,
            kv_bytes_per_token=kv_bytes_per_token,
        )
        self._plans = self.optimizer.plan_all_layers(query_context)
        return self._plans

    def plan_for_layer(self, layer: int) -> ExecutionPlan:
        """The optimizer's plan for ``layer`` (public for inspection/benchmarks)."""
        return self._plans_for_context()[layer]

    def _use_sparse_path(self, layer: int) -> bool:
        if self.decode_mode_override == "dense":
            return False
        if not self.is_connected:
            return False
        if layer not in self.context.snapshot.keys:
            return False
        plan = self._plans_for_context().get(layer)
        if plan is None or plan.is_full_attention:
            return False
        if plan.index_kind == "fine" and layer not in self.context.fine_indexes:
            # lazy build mode: the first sparse use pays for index
            # construction instead of the ingest path
            if self._index_provider is not None:
                provider, self._index_provider = self._index_provider, None
                provider()
            if layer not in self.context.fine_indexes:
                return False
        if plan.index_kind == "coarse" and layer not in self.context.coarse_indexes:
            return False
        return True

    def _layer_index_data(self, layer: int) -> LayerIndexData:
        data = self._layer_data.get(layer)
        if data is not None:
            return data
        context = self.context
        fine = context.fine_indexes.get(layer)
        coarse = context.coarse_indexes.get(layer)
        dims = self._dims
        # the query-head → index mapping must use the model's GQA group size;
        # the builder's own group size can differ (e.g. indexes rebuilt after
        # a reload fall back to key-vector query samples)
        data = LayerIndexData(
            keys=context.keys(layer),
            fine_indexes=fine.indexes if fine is not None else None,
            coarse_indexes=coarse,
            shared=fine.shared if fine is not None else True,
            gqa_group_size=(dims.gqa_group_size if dims is not None else (fine.gqa_group_size if fine is not None else 1)),
        )
        self._layer_data[layer] = data
        return data

    def _full_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        keys, values = self._materialized_kv(layer)
        if keys.shape[1] == 0:
            return np.zeros_like(q)
        return full_attention(q, keys, values, causal=True)

    def _sparse_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        if self.config.sparse_head_batching:
            return self._sparse_attention_batched(q, layer)
        return self._sparse_attention_per_head(q, layer)

    # ------------------------------------------------------------------
    # externally-driven sparse stepping (cross-request decode rounds)
    # ------------------------------------------------------------------
    def sparse_decode_plan(self, layer: int) -> ExecutionPlan | None:
        """The plan a single-token decode at ``layer`` would execute.

        ``None`` means the dense path serves this layer — the session is not
        connected, the plan is full attention, a needed index is missing, or
        the dynamic attention policy pinned the session dense.  A round
        coordinator uses this to classify sessions before stacking work.
        """
        self._require_open()
        if not self._use_sparse_path(layer):
            return None
        return self._plans_for_context()[layer]

    def sparse_layer_inputs(self, layer: int) -> SparseLayerInputs:
        """Resolve the state one sparse decode step of ``layer`` reads.

        Only valid when :meth:`sparse_decode_plan` returned a plan; the local
        snapshot reflects KV appended so far, so call this *after*
        ``update_query`` for the step's token.
        """
        plan = self._plans_for_context()[layer]
        data = self._layer_index_data(layer)
        local_keys, local_values = self.local_snapshot(layer)
        prefix = self.reused_prefix_length
        return SparseLayerInputs(
            plan=plan,
            data=data,
            prefix=prefix,
            prefix_keys=self.context.keys(layer)[:, :prefix, :],
            prefix_values=self.context.values(layer)[:, :prefix, :],
            window_positions=self.window.positions(prefix),
            local_keys=local_keys,
            local_values=local_values,
        )

    def fine_window_seeds(self, inputs: SparseLayerInputs, queries: np.ndarray) -> np.ndarray:
        """Per-head window seeds for a fine (DIPRS) retrieval at this step.

        One batched matmul over the window plus — when local KV exists — the
        same per-head matvec the per-head fallback computes: the seed must be
        bit-identical across execution modes because it drives DIPRS pruning
        (and through it the integer work stats).
        """
        dims = self._dims
        window_max = self.window.max_window_scores(
            queries, inputs.prefix_keys, inputs.window_positions
        )
        if inputs.has_local:
            for head in range(dims.num_query_heads):
                local_best = float(
                    (inputs.local_keys[head // dims.gqa_group_size] @ queries[head]).max()
                )
                window_max[head] = max(float(window_max[head]), local_best)
        return window_max

    def record_decode_stats(self, stats: DecodeStepStats, layer: int) -> None:
        """Account one layer's decode work (steps counted on the last layer).

        Public so a cross-request round coordinator can attribute the work it
        executed on this session's behalf.
        """
        self.last_decode_stats = stats
        self.total_decode_stats.merge(stats)
        if layer == self.num_layers - 1:
            self.num_decode_steps += 1

    def _sparse_attention_batched(self, q: np.ndarray, layer: int) -> np.ndarray:
        """The head-batched sparse decode hot path.

        One decode step of one layer used to cost ``num_query_heads``
        retrieval calls and ``num_query_heads`` partial-attention merges; here
        the window seeds come from a single batched matmul
        (``WindowCache.max_window_scores``), the scan-based retrieval kinds
        share their per-KV-head work across each GQA group
        (``PlanExecutor.retrieve_heads``), and the window/retrieved/local
        partials are stacked into one per-layer merge
        (``DataCentricAttentionEngine.layer_output``).  Outputs and
        :class:`DecodeStepStats` match the per-head fallback.
        """
        inputs = self.sparse_layer_inputs(layer)
        queries = q[:, 0, :]
        # only the fine (DIPRS) path consumes the window seeds; skip the
        # batched seed matmuls for flat/coarse plans
        window_max = None
        if inputs.plan.index_kind == IndexKind.FINE:
            window_max = self.fine_window_seeds(inputs, queries)

        sink = self.timing_sink
        started = time.perf_counter() if sink is not None else 0.0
        outcomes = self.executor.retrieve_heads(
            inputs.plan, inputs.data, queries, window_max_scores=window_max
        )
        retrieved = [outcome.positions[outcome.positions < inputs.prefix] for outcome in outcomes]
        if sink is not None:
            now = time.perf_counter()
            sink.retrieval_seconds += now - started
            started = now

        head_outputs, breakdowns = self.engine.layer_output(
            queries,
            inputs.prefix_keys,
            inputs.prefix_values,
            window_positions=inputs.window_positions,
            retrieved_positions=retrieved,
            local_keys=inputs.local_keys if inputs.has_local else None,
            local_values=inputs.local_values if inputs.has_local else None,
        )
        if sink is not None:
            sink.merge_seconds += time.perf_counter() - started

        self.record_decode_stats(decode_stats_from(outcomes, breakdowns), layer)
        return head_outputs[:, None, :]

    def _sparse_attention_per_head(self, q: np.ndarray, layer: int) -> np.ndarray:
        """The original per-head path, kept as the ``sparse_head_batching=False``
        fallback (and the reference the batched path is tested against)."""
        dims = self._dims
        plan = self._plans_for_context()[layer]
        data = self._layer_index_data(layer)
        local_keys, local_values = self.local_snapshot(layer)
        stored_keys = self.context.keys(layer)
        stored_values = self.context.values(layer)
        prefix = self.reused_prefix_length
        window_positions = self.window.positions(prefix)

        sink = self.timing_sink
        outputs = np.zeros((dims.num_query_heads, 1, dims.head_dim), dtype=np.float32)
        stats = DecodeStepStats()
        for head in range(dims.num_query_heads):
            kv_head = head // dims.gqa_group_size
            query = q[head, 0, :]
            head_keys = stored_keys[kv_head, :prefix, :]
            head_values = stored_values[kv_head, :prefix, :]
            local_k = local_keys[kv_head] if local_keys.shape[1] else None
            local_v = local_values[kv_head] if local_values.shape[1] else None

            started = time.perf_counter() if sink is not None else 0.0
            window_max = self.window.max_window_score(query, head_keys, window_positions)
            if local_k is not None and local_k.shape[0] > 0:
                window_max = max(window_max, float((local_k @ query).max()))
            outcome = self.executor.retrieve(plan, data, head, query, window_max_score=window_max)
            retrieved = outcome.positions[outcome.positions < prefix]
            if sink is not None:
                now = time.perf_counter()
                sink.retrieval_seconds += now - started
                started = now

            output, breakdown = self.engine.head_output(
                query,
                head_keys,
                head_values,
                window_positions=window_positions,
                retrieved_positions=retrieved,
                local_keys=local_k,
                local_values=local_v,
            )
            if sink is not None:
                sink.merge_seconds += time.perf_counter() - started
            outputs[head, 0, :] = output
            stats.num_selected_tokens += breakdown.num_retrieved_tokens
            stats.num_distance_computations += outcome.num_distance_computations
            stats.num_graph_hops += outcome.num_hops
            stats.num_window_tokens += breakdown.num_window_tokens
            stats.num_local_tokens += breakdown.num_local_tokens
            stats.num_heads += 1

        self.record_decode_stats(stats, layer)
        return outputs
