"""Configuration of the AlayaDB core."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..index.builder import IndexBuildConfig
from ..scheduler.tenancy import TenantSpec
from ..simulator.device import GIB
from ..simulator.slo import SLO

__all__ = ["AlayaDBConfig"]


@dataclass(frozen=True)
class AlayaDBConfig:
    """Tunables of the database (user interface → storage engine).

    The defaults mirror the paper's evaluation setup: a [128 initial + 512
    last] token window kept on the GPU, DIPR with ``beta = 50`` (scaled to the
    substrate's head dimension at session creation when
    ``scale_beta_to_head_dim`` is set), and the rule-based optimizer's
    thresholds.
    """

    # window cache (Section 7.1)
    window_initial_tokens: int = 128
    window_last_tokens: int = 512

    # DIPR defaults (Section 6.1)
    dipr_beta: float = 50.0
    dipr_capacity_threshold: int = 128
    scale_beta_to_head_dim: bool = True
    reference_head_dim: int = 128
    """Head dimension the default ``dipr_beta`` was calibrated for (Llama-3)."""

    # top-k defaults (used when the optimizer picks the coarse index)
    topk_k: int = 100
    coarse_block_size: int = 128
    coarse_num_blocks: int = 32

    # optimizer thresholds (Figure 8)
    short_context_threshold: int = 1024
    """Contexts at or below this length are served with full attention."""
    gpu_memory_budget_bytes: int = 16 * GIB
    """Budget available for cached KV blocks; "high" budgets route to the
    coarse index, "low" budgets to DIPR."""
    flat_index_layers: tuple[int, ...] = (0,)
    """Layers whose DIPR queries go to the flat index (the first layer needs
    a large number of critical tokens, see Figure 5)."""

    # context reuse
    min_reuse_tokens: int = 16
    """Minimum common-prefix length worth reusing; shorter matches (e.g. just
    a shared BOS token) are ignored and the prompt is prefilled from scratch."""

    # retrieval safety valve
    max_retrieved_tokens: int | None = None

    # sparse decode hot path
    sparse_head_batching: bool = True
    """Serve sparse decode attention with head-batched execution — per-GQA-group
    shared flat/coarse scans, one batched window-seed matmul, and stacked
    partial-attention merges — instead of one retrieval + merge per query
    head.  Off falls back to the per-head path (same outputs and stats)."""

    fine_frontier_batching: bool = True
    """Walk the per-KV-head RoarGraph once per GQA group during fine (DIPRS)
    retrieval: one shared visited set and frontier, fused hop scoring as a
    single ``(g, d) @ (d, m)`` matmul, per-head thresholds and candidate
    lists.  The frontier expands while *any* head finds a node critical, so
    every head scores everything the group visits and per-head results are
    the exact ``best - beta`` range over the shared visited set (typically a
    superset of — and on clustered data equal to — the per-head walk's);
    shared distance computations are counted once per group.  Off falls back
    to one ``diprs_search`` walk per query head (the test oracle).  Only
    takes effect inside the head-batched path (``sparse_head_batching``)."""

    # index construction
    index_build: IndexBuildConfig = field(default_factory=IndexBuildConfig)

    lazy_index_build: bool = False
    """When set, ``DB.import_context`` / ``DB.store`` defer fine-index
    construction off the ingest critical path: indexes are built on the first
    sparse-attention use of the context (or explicitly via
    ``DB.build_pending``)."""

    # serving SLO
    slo: SLO = field(default_factory=SLO)

    # request scheduler (Section 8, Model-as-a-Service)
    max_inflight_requests: int = 8
    """Maximum number of requests the scheduler keeps in flight at once."""

    prefill_chunk_tokens: int = 256
    """Prompt tokens prefilled per scheduler step; chunking lets decode steps
    of other in-flight requests interleave with a long prefill."""

    scheduler_policy: str = "fcfs"
    """Admission order: ``"fcfs"`` (arrival order) or ``"slo"`` (least TTFT
    slack first, then priority)."""

    decode_batching: bool = True
    """Serve all decode-ready in-flight requests with one batched forward
    pass per step (shared embedding/projection/MLP/LM-head matmuls) instead
    of one model call per request."""

    cross_request_sparse_batching: bool = True
    """Run one *sparse* decode round per scheduler step across decode-ready
    sessions instead of re-entering each session's retrieval separately:
    plan-compatible sessions (same stored context, reused prefix and
    per-layer plan) stack their flat/coarse scans into a single gemm over the
    concatenated query heads and merge window/retrieved/local partials with
    one stacked attention-engine call per layer per group, while fine (DIPRS)
    walks stay per session but run from one dispatch loop with shared
    frontier scratch.  Off keeps one attention call per session inside the
    batched forward pass (same outputs and stats — the test oracle).  Only
    takes effect together with ``decode_batching``."""

    dynamic_attention_policy: bool = False
    """ALISA-style per-step dense/sparse switching: each decode round,
    a session flips to exact dense attention while admission budget pressure
    (committed / budget bytes) sits at or below the dense watermark —
    accuracy costs nothing when memory is plentiful — and back to sparse
    retrieval once pressure reaches the sparse watermark.  The watermark gap
    plus a minimum dwell give hysteresis so sessions don't thrash.  Inactive
    without ``scheduler_gpu_budget_bytes`` (pressure is undefined)."""

    attention_policy_dense_watermark: float = 0.35
    """Budget pressure at or below which a session may switch to dense
    attention."""

    attention_policy_sparse_watermark: float = 0.75
    """Budget pressure at or above which a session may switch back to sparse
    attention."""

    attention_policy_min_dwell_steps: int = 4
    """Decode steps a session must spend in its current attention mode
    before the policy may switch it again."""

    preemption: bool = False
    """Under the ``"slo"`` policy: when a queued request's TTFT slack goes
    critical and every in-flight slot is taken, pause the in-flight request
    with the most slack (releasing its memory reservation and unpinning its
    stored context so the context store may spill it) and resume it when a
    slot frees."""

    preemption_slack_seconds: float = 0.5
    """A queued request is considered critical once its TTFT slack drops to
    this many seconds (or below)."""

    scheduler_gpu_budget_bytes: int | None = None
    """Global GPU-memory budget admission control enforces across all
    in-flight requests; ``None`` disables admission control."""

    # multi-tenant fairness and backpressure (the serving frontend's policy)
    tenant_fairness: bool = False
    """Route admission through a :class:`~repro.scheduler.tenancy.TenantGovernor`:
    deficit-round-robin weighted fair queuing across tenants (the FCFS/SLO
    policy still orders requests *within* each tenant), per-tenant in-flight
    and reserved-byte quotas, and queue-depth backpressure — an over-limit
    submission raises ``TenantThrottledError`` (HTTP 429) instead of queuing
    without bound.  Implied on when ``tenants`` is non-empty."""

    tenants: tuple[TenantSpec, ...] = ()
    """Declared tenants (name, DRR weight, quotas, backpressure threshold).
    Undeclared tenant ids are auto-registered with ``tenant_default_max_queued``
    and weight 1 unless ``strict_tenants`` rejects them."""

    strict_tenants: bool = False
    """Reject requests naming a tenant absent from ``tenants``
    (``UnknownTenantError``; the HTTP 400 path) instead of auto-registering."""

    tenant_quantum_tokens: int = 256
    """Deficit-round-robin replenishment per weight unit: each full scan of
    the tenant ring entitles a backlogged tenant to ``quantum x weight`` more
    admitted tokens (prompt + budgeted generation)."""

    tenant_default_max_queued: int | None = None
    """Backpressure threshold applied to auto-registered tenants (and the
    implicit ``default`` tenant); ``None`` never throttles them."""

    # async HTTP serving frontend
    http_host: str = "127.0.0.1"
    """Interface the asyncio HTTP server binds."""

    http_port: int = 8793
    """Port the asyncio HTTP server binds (0 picks an ephemeral port)."""

    http_max_body_bytes: int = 1 << 20
    """Largest accepted request body; beyond it the server answers 413."""

    scheduler_drain_index_builds: bool = False
    """When set, the scheduler drains one pending (lazy) fine-index build
    after each step instead of leaving builds to first sparse use."""

    # context-store residency budget (Section 7.3 applied to whole contexts)
    context_store_budget_bytes: int | None = None
    """Byte budget for KV snapshots resident in memory; colder contexts are
    spilled to disk (requires the DB to be created with a ``storage_dir``)
    and transparently reloaded on prefix hits.  ``None`` means unbounded."""

    # durable context database
    context_db_path: str | None = None
    """Directory of the durable context database.  When set, every stored
    context is persisted (snapshot + indexes + manifest row) as it is added,
    and a DB/service constructed over the same path recovers the whole
    context population — restart-and-reuse without re-prefilling."""

    storage_backend: str = "filesystem"
    """Durable-tier backend: ``"filesystem"`` (one file per object under the
    database directory) or ``"memory"`` (dict-backed; tests and scratch)."""

    persist_fine_indexes: bool = True
    """Persist serialized fine/coarse indexes next to each spilled or durably
    stored snapshot, so a reload re-attaches them by deserialization (bit-
    identical retrieval) instead of rebuilding from the keys.  Off keeps only
    snapshots on disk; reloads fall back to index rebuilds."""

    # sharded context serving (context parallelism)
    num_shards: int = 1
    """Default shard count for ``DB.shard_context`` / the sharded router: a
    context's KV blocks and per-layer indexes are range-partitioned into this
    many token-range shards.  1 keeps the single-owner layout."""

    shard_token_range: int | None = None
    """Alternative shard sizing: target tokens per shard (the shard count
    then grows with the context).  Overrides ``num_shards`` when set.  Shard
    boundaries are aligned down to ``coarse_block_size`` so shard-local
    coarse blocks coincide with the full-context blocks and the cross-shard
    block merge stays exact."""

    shard_router_policy: str = "round_robin"
    """How the sharded router assigns shard ownership to workers:
    ``"round_robin"`` deals shards out in shard-id order (shard ``i`` goes to
    worker ``i mod num_workers``)."""

    def __post_init__(self) -> None:
        if self.window_initial_tokens < 0 or self.window_last_tokens < 0:
            raise ConfigError("window sizes must be non-negative")
        if self.dipr_beta < 0:
            raise ConfigError(f"dipr_beta must be non-negative, got {self.dipr_beta}")
        if self.topk_k <= 0:
            raise ConfigError(f"topk_k must be positive, got {self.topk_k}")
        if self.short_context_threshold < 0:
            raise ConfigError("short_context_threshold must be non-negative")
        if self.max_inflight_requests <= 0:
            raise ConfigError(
                f"max_inflight_requests must be positive, got {self.max_inflight_requests}"
            )
        if self.prefill_chunk_tokens <= 0:
            raise ConfigError(
                f"prefill_chunk_tokens must be positive, got {self.prefill_chunk_tokens}"
            )
        if self.scheduler_policy not in ("fcfs", "slo"):
            raise ConfigError(
                f"scheduler_policy must be 'fcfs' or 'slo', got {self.scheduler_policy!r}"
            )
        if self.preemption and self.scheduler_policy != "slo":
            raise ConfigError(
                "preemption requires scheduler_policy='slo' (FCFS defines no "
                "TTFT slack to preempt on)"
            )
        if self.preemption_slack_seconds < 0:
            raise ConfigError(
                f"preemption_slack_seconds must be non-negative, "
                f"got {self.preemption_slack_seconds}"
            )
        if not 0.0 <= self.attention_policy_dense_watermark <= self.attention_policy_sparse_watermark:
            raise ConfigError(
                "attention policy watermarks must satisfy "
                "0 <= dense_watermark <= sparse_watermark, got "
                f"dense={self.attention_policy_dense_watermark} "
                f"sparse={self.attention_policy_sparse_watermark}"
            )
        if self.attention_policy_min_dwell_steps < 0:
            raise ConfigError(
                f"attention_policy_min_dwell_steps must be non-negative, "
                f"got {self.attention_policy_min_dwell_steps}"
            )
        if self.context_store_budget_bytes is not None and self.context_store_budget_bytes <= 0:
            raise ConfigError("context_store_budget_bytes must be positive when set")
        if self.tenant_quantum_tokens <= 0:
            raise ConfigError(
                f"tenant_quantum_tokens must be positive, got {self.tenant_quantum_tokens}"
            )
        if self.tenant_default_max_queued is not None and self.tenant_default_max_queued <= 0:
            raise ConfigError(
                f"tenant_default_max_queued must be positive when set, "
                f"got {self.tenant_default_max_queued}"
            )
        names = [spec.name for spec in self.tenants]
        if len(names) != len(set(names)):
            raise ConfigError(f"tenant names must be unique, got {names}")
        if self.strict_tenants and not self.tenants:
            raise ConfigError("strict_tenants requires at least one declared tenant")
        if not 0 <= self.http_port <= 65535:
            raise ConfigError(f"http_port must be in [0, 65535], got {self.http_port}")
        if self.http_max_body_bytes <= 0:
            raise ConfigError(
                f"http_max_body_bytes must be positive, got {self.http_max_body_bytes}"
            )
        from ..storage.backend import available_backends

        if self.storage_backend not in available_backends():
            names = ", ".join(repr(name) for name in available_backends())
            raise ConfigError(
                f"storage_backend must be one of the registered backends "
                f"({names}), got {self.storage_backend!r}"
            )
        if self.num_shards < 1:
            raise ConfigError(f"num_shards must be at least 1, got {self.num_shards}")
        if self.shard_token_range is not None and self.shard_token_range <= 0:
            raise ConfigError(
                f"shard_token_range must be positive when set, got {self.shard_token_range}"
            )
        if self.shard_router_policy not in ("round_robin",):
            raise ConfigError(
                f"shard_router_policy must be 'round_robin', got {self.shard_router_policy!r}"
            )

    @property
    def window_total_tokens(self) -> int:
        return self.window_initial_tokens + self.window_last_tokens

    @property
    def tenant_governance_enabled(self) -> bool:
        """Whether the service should construct a ``TenantGovernor``."""
        return (
            self.tenant_fairness
            or bool(self.tenants)
            or self.strict_tenants
            or self.tenant_default_max_queued is not None
        )

    def scaled_beta(self, head_dim: int) -> float:
        """The DIPR ``beta`` adjusted for the substrate's head dimension.

        ``beta`` is proportional to ``sqrt(d)`` (Theorem 1), so a value tuned
        on Llama's 128-dim heads is rescaled to this model's head width.
        """
        if not self.scale_beta_to_head_dim:
            return self.dipr_beta
        return self.dipr_beta * (head_dim / self.reference_head_dim) ** 0.5
