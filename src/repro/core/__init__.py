"""The AlayaDB core: user interface, query optimizer and attention engine."""

from .attention_engine import AttentionBreakdown, DataCentricAttentionEngine
from .config import AlayaDBConfig
from .context_store import ContextStore, PrefixMatch, StoredContext
from .db import DB
from .decode_round import CrossRequestDecodeRound, DynamicAttentionPolicy, PolicyState, StageTimings
from .handles import ChatSession, ChatTurn, RequestHandle
from .optimizer import QueryContext, RuleBasedOptimizer
from .planner import ExecutionPlan, LayerIndexData, PlanExecutor, RetrievalOutcome
from .service import InferenceService, RequestRecord, ServiceStats
from .session import DecodeStepStats, Session, SparseLayerInputs
from .window_cache import WindowCache

__all__ = [
    "AlayaDBConfig",
    "AttentionBreakdown",
    "ChatSession",
    "ChatTurn",
    "ContextStore",
    "CrossRequestDecodeRound",
    "DB",
    "DynamicAttentionPolicy",
    "PolicyState",
    "SparseLayerInputs",
    "StageTimings",
    "RequestHandle",
    "DataCentricAttentionEngine",
    "DecodeStepStats",
    "InferenceService",
    "ExecutionPlan",
    "LayerIndexData",
    "PlanExecutor",
    "PrefixMatch",
    "QueryContext",
    "RequestRecord",
    "RetrievalOutcome",
    "ServiceStats",
    "RuleBasedOptimizer",
    "Session",
    "StoredContext",
    "WindowCache",
]
