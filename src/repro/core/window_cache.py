"""Window cache: the initial + last tokens kept in GPU memory (Section 7.1).

Sparse-attention systems keep a window of the first tokens (attention sinks)
and the most recent tokens resident because they carry disproportionately
large attention weight.  AlayaDB additionally exploits the window to tighten
DIPRS pruning: the maximum inner product between the query and the window
keys is a strong lower bound on the global maximum (the paper measures ~98%
coverage with a 32+32 window on Math.F), so it is fed into the search as the
initial best-so-far score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WindowCache"]


@dataclass
class WindowCache:
    """Tracks which token positions are held in the GPU-resident window."""

    initial_tokens: int
    last_tokens: int

    def __post_init__(self) -> None:
        self._positions_cache: dict[int, np.ndarray] = {}

    def positions(self, context_length: int) -> np.ndarray:
        """Window positions for a context of ``context_length`` tokens.

        The initial and last ranges may overlap for short contexts; the
        result is deduplicated and sorted.  Results are memoized per length
        (the decode hot path asks for the same window every layer) — callers
        must treat the returned array as read-only.
        """
        cached = self._positions_cache.get(context_length)
        if cached is not None:
            return cached
        if context_length <= 0:
            result = np.empty(0, dtype=np.int64)
        else:
            initial = np.arange(0, min(self.initial_tokens, context_length), dtype=np.int64)
            last_start = max(0, context_length - self.last_tokens)
            last = np.arange(last_start, context_length, dtype=np.int64)
            result = np.unique(np.concatenate([initial, last]))
        self._positions_cache[context_length] = result
        return result

    def covers(self, context_length: int) -> bool:
        """True when the window spans the whole context."""
        return context_length <= self.initial_tokens + self.last_tokens

    def num_positions(self, context_length: int) -> int:
        return int(self.positions(context_length).shape[0])

    def memory_bytes(self, context_length: int, num_kv_heads: int, head_dim: int, num_layers: int, bytes_per_value: int = 4) -> int:
        """GPU bytes used by the window's K and V across all layers."""
        tokens = self.num_positions(context_length)
        return 2 * tokens * num_kv_heads * head_dim * num_layers * bytes_per_value

    def max_window_score(self, query: np.ndarray, keys: np.ndarray, positions: np.ndarray) -> float:
        """Maximum inner product between ``query`` and the window keys.

        ``keys`` is the full ``(n, d)`` key matrix of one head; ``positions``
        the window positions (so callers can reuse a precomputed window).
        Returns ``-inf`` for an empty window.
        """
        if positions.shape[0] == 0:
            return float("-inf")
        scores = keys[positions] @ np.asarray(query, dtype=np.float32)
        return float(scores.max())

    def max_window_scores(self, queries: np.ndarray, keys: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Per-head maximum inner products with the window keys.

        ``queries`` is ``(num_query_heads, d)``; ``keys`` is the full
        ``(num_kv_heads, n, d)`` key tensor of one layer (each KV head serves
        a GQA group of query heads).  The window gather is shared per KV head;
        each head's score is then the same matvec :meth:`max_window_score`
        computes, so row ``h`` is *bit-identical* to the per-head call (the
        seed feeds DIPRS pruning decisions, where a ULP-level difference could
        flip a boundary node between modes).  Returns ``(num_query_heads,)``;
        ``-inf`` rows for an empty window.
        """
        queries = np.asarray(queries, dtype=np.float32)
        num_heads = queries.shape[0]
        if positions.shape[0] == 0:
            return np.full(num_heads, -np.inf, dtype=np.float32)
        keys = np.asarray(keys, dtype=np.float32)
        num_kv_heads = keys.shape[0]
        gqa_group_size = num_heads // num_kv_heads
        scores = np.empty(num_heads, dtype=np.float32)
        for kv_head in range(num_kv_heads):
            window_keys = keys[kv_head][positions]
            for head in range(kv_head * gqa_group_size, (kv_head + 1) * gqa_group_size):
                scores[head] = (window_keys @ queries[head]).max()
        return scores
