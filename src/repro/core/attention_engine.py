"""Data-centric attention engine (Section 7.2 of the paper).

Instead of gathering every retrieved key/value onto one device and running a
single kernel, AlayaDB computes *partial attention where the data lives* —
one partial over the GPU-resident window, one over the CPU-resident retrieved
tokens — and merges the partials with the exact flash-attention
decomposition.  Only the per-partial outputs and their log-sum-exp statistics
cross devices, never the KV tensors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.attention import PartialAttention, merge_partial_attention, partial_attention

__all__ = ["AttentionBreakdown", "DataCentricAttentionEngine"]


@dataclass
class AttentionBreakdown:
    """Where the tokens that contributed to one head's output came from."""

    num_window_tokens: int = 0
    num_retrieved_tokens: int = 0
    num_local_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.num_window_tokens + self.num_retrieved_tokens + self.num_local_tokens


class DataCentricAttentionEngine:
    """Computes sparse attention outputs by merging per-location partials."""

    def __init__(self, scale: float | None = None):
        self.scale = scale

    def head_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, AttentionBreakdown]:
        """Sparse attention output for one query head.

        Parameters
        ----------
        query:
            ``(head_dim,)`` query vector of this head.
        keys / values:
            ``(n, head_dim)`` KV of the head's KV group within the stored
            context (conceptually CPU/disk resident).
        window_positions:
            Positions kept in the GPU window cache.
        retrieved_positions:
            Positions selected by the retrieval plan (deduplicated against the
            window inside this method).
        local_keys / local_values:
            ``(m, head_dim)`` KV of tokens generated in this session that have
            not been materialised into the index yet (always attended).
        """
        query = np.asarray(query, dtype=np.float32)
        head_dim = query.shape[0]
        query2 = query[None, :]

        window_positions = np.asarray(window_positions, dtype=np.int64)
        retrieved_positions = np.asarray(retrieved_positions, dtype=np.int64)
        if window_positions.size and retrieved_positions.size:
            retrieved_positions = np.setdiff1d(retrieved_positions, window_positions, assume_unique=False)

        partials: list[PartialAttention] = []
        breakdown = AttentionBreakdown()

        if window_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, window_positions, :],
                    values[None, window_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_window_tokens = int(window_positions.size)
        if retrieved_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, retrieved_positions, :],
                    values[None, retrieved_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_retrieved_tokens = int(retrieved_positions.size)
        if local_keys is not None and local_keys.shape[0] > 0:
            partials.append(
                partial_attention(query2, local_keys[None, :, :], local_values[None, :, :], scale=self.scale)
            )
            breakdown.num_local_tokens = int(local_keys.shape[0])

        if not partials:
            return np.zeros(head_dim, dtype=np.float32), breakdown
        merged = merge_partial_attention(partials)
        return merged[0], breakdown

    def full_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact (full) attention for one head, still computed data-centrically."""
        positions = np.arange(keys.shape[0], dtype=np.int64)
        output, _ = self.head_output(
            query,
            keys,
            values,
            window_positions=positions,
            retrieved_positions=np.empty(0, dtype=np.int64),
            local_keys=local_keys,
            local_values=local_values,
        )
        return output
