"""Data-centric attention engine (Section 7.2 of the paper).

Instead of gathering every retrieved key/value onto one device and running a
single kernel, AlayaDB computes *partial attention where the data lives* —
one partial over the GPU-resident window, one over the CPU-resident retrieved
tokens — and merges the partials with the exact flash-attention
decomposition.  Only the per-partial outputs and their log-sum-exp statistics
cross devices, never the KV tensors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.attention import PartialAttention, merge_partial_attention, partial_attention

__all__ = ["AttentionBreakdown", "DataCentricAttentionEngine"]


@dataclass
class AttentionBreakdown:
    """Where the tokens that contributed to one head's output came from."""

    num_window_tokens: int = 0
    num_retrieved_tokens: int = 0
    num_local_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.num_window_tokens + self.num_retrieved_tokens + self.num_local_tokens


class DataCentricAttentionEngine:
    """Computes sparse attention outputs by merging per-location partials."""

    def __init__(self, scale: float | None = None):
        self.scale = scale

    def head_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, AttentionBreakdown]:
        """Sparse attention output for one query head.

        Parameters
        ----------
        query:
            ``(head_dim,)`` query vector of this head.
        keys / values:
            ``(n, head_dim)`` KV of the head's KV group within the stored
            context (conceptually CPU/disk resident).
        window_positions:
            Positions kept in the GPU window cache.
        retrieved_positions:
            Positions selected by the retrieval plan (deduplicated against the
            window inside this method).
        local_keys / local_values:
            ``(m, head_dim)`` KV of tokens generated in this session that have
            not been materialised into the index yet (always attended).
        """
        query = np.asarray(query, dtype=np.float32)
        head_dim = query.shape[0]
        query2 = query[None, :]

        window_positions = np.asarray(window_positions, dtype=np.int64)
        retrieved_positions = np.asarray(retrieved_positions, dtype=np.int64)
        if window_positions.size and retrieved_positions.size:
            retrieved_positions = np.setdiff1d(retrieved_positions, window_positions, assume_unique=False)

        partials: list[PartialAttention] = []
        breakdown = AttentionBreakdown()

        if window_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, window_positions, :],
                    values[None, window_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_window_tokens = int(window_positions.size)
        if retrieved_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, retrieved_positions, :],
                    values[None, retrieved_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_retrieved_tokens = int(retrieved_positions.size)
        if local_keys is not None and local_keys.shape[0] > 0:
            partials.append(
                partial_attention(query2, local_keys[None, :, :], local_values[None, :, :], scale=self.scale)
            )
            breakdown.num_local_tokens = int(local_keys.shape[0])

        if not partials:
            return np.zeros(head_dim, dtype=np.float32), breakdown
        merged = merge_partial_attention(partials)
        return merged[0], breakdown

    def layer_output(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: list[np.ndarray],
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[AttentionBreakdown]]:
        """Sparse attention outputs for all query heads of one layer, batched.

        The batched sibling of :meth:`head_output`: the window and local
        partials are computed with one ``partial_attention`` call each over
        the full head dimension (GQA expansion included), the per-head
        retrieved sets are padded into one ``(heads, m_max, d)`` gather, and a
        single per-head merge replaces ``heads`` separate merges.  Row ``h``
        of the output (and entry ``h`` of the breakdown list) matches
        ``head_output`` for query head ``h``.

        Parameters
        ----------
        queries:
            ``(num_query_heads, head_dim)`` decode queries.
        keys / values:
            ``(num_kv_heads, n, head_dim)`` KV of the stored context.
        window_positions:
            Positions in the GPU window cache (shared by all heads).
        retrieved_positions:
            One position array per query head (deduplicated against the
            window inside this method).
        local_keys / local_values:
            ``(num_kv_heads, m, head_dim)`` unmaterialised local KV, or None.
        """
        queries = np.asarray(queries, dtype=np.float32)
        num_heads, head_dim = queries.shape
        window_positions = np.asarray(window_positions, dtype=np.int64)
        num_kv_heads = keys.shape[0]
        gqa_group_size = num_heads // num_kv_heads

        # dedup against the window with one shared lookup table instead of a
        # per-head setdiff1d; np.unique keeps setdiff1d's sorted-unique output
        in_window = None
        if window_positions.size:
            in_window = np.zeros(keys.shape[1], dtype=bool)
            in_window[window_positions] = True
        deduped: list[np.ndarray] = []
        for positions in retrieved_positions:
            positions = np.asarray(positions, dtype=np.int64)
            if in_window is not None and positions.size:
                positions = np.unique(positions[~in_window[positions]])
            deduped.append(positions)

        breakdowns = [AttentionBreakdown() for _ in range(num_heads)]
        partials: list[PartialAttention] = []
        if window_positions.size:
            partials.append(
                partial_attention(
                    queries,
                    keys[:, window_positions, :],
                    values[:, window_positions, :],
                    scale=self.scale,
                )
            )
            for breakdown in breakdowns:
                breakdown.num_window_tokens = int(window_positions.size)
        retrieved_partial = self._retrieved_partial(queries, keys, values, deduped, gqa_group_size)
        if retrieved_partial is not None:
            partials.append(retrieved_partial)
            for breakdown, positions in zip(breakdowns, deduped):
                breakdown.num_retrieved_tokens = int(positions.size)
        if local_keys is not None and local_keys.shape[1] > 0:
            partials.append(
                partial_attention(queries, local_keys, local_values, scale=self.scale)
            )
            for breakdown in breakdowns:
                breakdown.num_local_tokens = int(local_keys.shape[1])
        return self._merge_per_head(partials, num_heads, head_dim), breakdowns

    def _retrieved_partial(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        positions_per_head: list[np.ndarray],
        gqa_group_size: int,
    ) -> PartialAttention | None:
        """Partial attention over the per-head retrieved sets, padded to one batch.

        Heads retrieve different numbers of tokens, so the gather pads every
        head to the longest set and masks the padding out of the softmax
        statistics.  Heads with nothing retrieved come back as the per-head
        neutral element (``max_logit=-inf``, ``sum_exp=0``).
        """
        num_heads, head_dim = queries.shape
        lengths = [int(p.size) for p in positions_per_head]
        max_len = max(lengths, default=0)
        if max_len == 0:
            return None
        padded = np.zeros((num_heads, max_len), dtype=np.int64)
        mask = np.zeros((num_heads, max_len), dtype=bool)
        for head, positions in enumerate(positions_per_head):
            padded[head, : positions.size] = positions
            mask[head, : positions.size] = True
        kv_of_head = np.arange(num_heads) // gqa_group_size
        gathered_keys = keys[kv_of_head[:, None], padded, :]
        gathered_values = values[kv_of_head[:, None], padded, :]
        scale = self.scale if self.scale is not None else 1.0 / np.sqrt(head_dim)
        logits = np.einsum("hd,hmd->hm", queries, gathered_keys) * np.float32(scale)
        logits = np.where(mask, logits, np.float32(-np.inf))
        max_logit = logits.max(axis=1)
        empty = np.isneginf(max_logit)
        safe_max = np.where(empty, np.float32(0.0), max_logit)
        exps = np.where(mask, np.exp(logits - safe_max[:, None]), np.float32(0.0))
        sum_exp = exps.sum(axis=1)
        denom = np.where(sum_exp == 0.0, np.float32(1.0), sum_exp)
        output = np.einsum("hm,hmd->hd", exps, gathered_values) / denom[:, None]
        return PartialAttention(
            output=output.astype(np.float32),
            max_logit=max_logit.astype(np.float32),
            sum_exp=sum_exp.astype(np.float32),
        )

    @staticmethod
    def _merge_per_head(partials: list[PartialAttention], num_heads: int, head_dim: int) -> np.ndarray:
        """Merge batched partials, tolerating per-head-empty statistics.

        ``merge_partial_attention`` only drops partials that are empty for
        *every* head; here a partial may be empty for some heads only (e.g. a
        head that retrieved nothing), so the weights are formed against a
        finite per-head maximum and all-empty heads fall back to zeros — the
        same result the per-head path produces when a head has no partials.
        """
        partials = [p for p in partials if not p.is_empty()]
        if not partials:
            return np.zeros((num_heads, head_dim), dtype=np.float32)
        if len(partials) == 1:
            return partials[0].output.copy()
        global_max = np.max(np.stack([p.max_logit for p in partials], axis=0), axis=0)
        safe_max = np.where(np.isneginf(global_max), np.float32(0.0), global_max)
        total_weight = np.zeros(num_heads, dtype=np.float32)
        accumulated = np.zeros((num_heads, head_dim), dtype=np.float32)
        for part in partials:
            weight = part.sum_exp * np.exp(part.max_logit - safe_max)
            accumulated += part.output * weight[:, None]
            total_weight += weight
        denom = np.where(total_weight == 0.0, np.float32(1.0), total_weight)
        return (accumulated / denom[:, None]).astype(np.float32)

    def full_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact (full) attention for one head, still computed data-centrically."""
        positions = np.arange(keys.shape[0], dtype=np.int64)
        output, _ = self.head_output(
            query,
            keys,
            values,
            window_positions=positions,
            retrieved_positions=np.empty(0, dtype=np.int64),
            local_keys=local_keys,
            local_values=local_values,
        )
        return output
