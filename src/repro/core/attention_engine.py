"""Data-centric attention engine (Section 7.2 of the paper).

Instead of gathering every retrieved key/value onto one device and running a
single kernel, AlayaDB computes *partial attention where the data lives* —
one partial over the GPU-resident window, one over the CPU-resident retrieved
tokens — and merges the partials with the exact flash-attention
decomposition.  Only the per-partial outputs and their log-sum-exp statistics
cross devices, never the KV tensors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.attention import (
    PartialAttention,
    combine_partial_attention,
    merge_partial_attention,
    partial_attention,
)

__all__ = ["AttentionBreakdown", "DataCentricAttentionEngine"]


@dataclass
class AttentionBreakdown:
    """Where the tokens that contributed to one head's output came from."""

    num_window_tokens: int = 0
    num_retrieved_tokens: int = 0
    num_local_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.num_window_tokens + self.num_retrieved_tokens + self.num_local_tokens


class DataCentricAttentionEngine:
    """Computes sparse attention outputs by merging per-location partials."""

    def __init__(self, scale: float | None = None):
        self.scale = scale

    def head_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, AttentionBreakdown]:
        """Sparse attention output for one query head.

        Parameters
        ----------
        query:
            ``(head_dim,)`` query vector of this head.
        keys / values:
            ``(n, head_dim)`` KV of the head's KV group within the stored
            context (conceptually CPU/disk resident).
        window_positions:
            Positions kept in the GPU window cache.
        retrieved_positions:
            Positions selected by the retrieval plan (deduplicated against the
            window inside this method).
        local_keys / local_values:
            ``(m, head_dim)`` KV of tokens generated in this session that have
            not been materialised into the index yet (always attended).
        """
        query = np.asarray(query, dtype=np.float32)
        head_dim = query.shape[0]
        query2 = query[None, :]

        window_positions = np.asarray(window_positions, dtype=np.int64)
        retrieved_positions = np.asarray(retrieved_positions, dtype=np.int64)
        if window_positions.size and retrieved_positions.size:
            retrieved_positions = np.setdiff1d(retrieved_positions, window_positions, assume_unique=False)

        partials: list[PartialAttention] = []
        breakdown = AttentionBreakdown()

        if window_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, window_positions, :],
                    values[None, window_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_window_tokens = int(window_positions.size)
        if retrieved_positions.size:
            partials.append(
                partial_attention(
                    query2,
                    keys[None, retrieved_positions, :],
                    values[None, retrieved_positions, :],
                    scale=self.scale,
                )
            )
            breakdown.num_retrieved_tokens = int(retrieved_positions.size)
        if local_keys is not None and local_keys.shape[0] > 0:
            partials.append(
                partial_attention(query2, local_keys[None, :, :], local_values[None, :, :], scale=self.scale)
            )
            breakdown.num_local_tokens = int(local_keys.shape[0])

        if not partials:
            return np.zeros(head_dim, dtype=np.float32), breakdown
        merged = merge_partial_attention(partials)
        return merged[0], breakdown

    def layer_output(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: list[np.ndarray],
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[AttentionBreakdown]]:
        """Sparse attention outputs for all query heads of one layer, batched.

        The batched sibling of :meth:`head_output`: the window and local
        partials are computed with one ``partial_attention`` call each over
        the full head dimension (GQA expansion included), the per-head
        retrieved sets are padded into one ``(heads, m_max, d)`` gather, and a
        single per-head merge replaces ``heads`` separate merges.  Row ``h``
        of the output (and entry ``h`` of the breakdown list) matches
        ``head_output`` for query head ``h``.

        Parameters
        ----------
        queries:
            ``(num_query_heads, head_dim)`` decode queries.
        keys / values:
            ``(num_kv_heads, n, head_dim)`` KV of the stored context.
        window_positions:
            Positions in the GPU window cache (shared by all heads).
        retrieved_positions:
            One position array per query head; each array must be
            duplicate-free (retrieval outcomes are).  Deduplication against
            the window happens inside this method.
        local_keys / local_values:
            ``(num_kv_heads, m, head_dim)`` unmaterialised local KV, or None.
        """
        queries = np.asarray(queries, dtype=np.float32)
        num_heads, head_dim = queries.shape
        partials, breakdowns = self._layer_partials(
            queries, keys, values, window_positions, retrieved_positions, local_keys, local_values
        )
        return self._merge_per_head(partials, num_heads, head_dim), breakdowns

    def _layer_partials(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: list[np.ndarray],
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> tuple[list[PartialAttention], list[AttentionBreakdown]]:
        """The window/retrieved/local partials of :meth:`layer_output`, unmerged."""
        queries = np.asarray(queries, dtype=np.float32)
        num_heads = queries.shape[0]
        window_positions = np.asarray(window_positions, dtype=np.int64)
        num_kv_heads = keys.shape[0]
        gqa_group_size = num_heads // num_kv_heads

        in_window = None
        if window_positions.size:
            in_window = np.zeros(keys.shape[1], dtype=bool)
            in_window[window_positions] = True
        dedup = self._dedup_and_pad(retrieved_positions, in_window, num_heads, keys.shape[1])

        breakdowns = [AttentionBreakdown() for _ in range(num_heads)]
        partials: list[PartialAttention] = []
        if window_positions.size:
            partials.append(
                partial_attention(
                    queries,
                    keys[:, window_positions, :],
                    values[:, window_positions, :],
                    scale=self.scale,
                )
            )
            for breakdown in breakdowns:
                breakdown.num_window_tokens = int(window_positions.size)
        if dedup is not None:
            padded, mask, counts = dedup
            partials.append(
                self._masked_retrieved_partial(
                    queries, keys, values, padded, mask,
                    np.arange(num_heads, dtype=np.int64) // gqa_group_size,
                )
            )
            for head, breakdown in enumerate(breakdowns):
                breakdown.num_retrieved_tokens = int(counts[head])
        if local_keys is not None and local_keys.shape[1] > 0:
            partials.append(
                partial_attention(queries, local_keys, local_values, scale=self.scale)
            )
            for breakdown in breakdowns:
                breakdown.num_local_tokens = int(local_keys.shape[1])
        return partials, breakdowns

    def shard_layer_partial(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: list[np.ndarray],
    ) -> tuple[PartialAttention, list[AttentionBreakdown]]:
        """One shard's contribution to a sharded decode step, as a single partial.

        Shard-local sibling of :meth:`layer_output`: ``keys``/``values`` are a
        shard's slice of the stored context and all positions are *shard-local*.
        The window and retrieved partials are collapsed into one
        :class:`PartialAttention` that keeps its log-sum-exp statistics, so the
        router can merge shard partials from every owner (plus the session's
        local-KV partial) with :meth:`merge_sharded_partials` and obtain exactly
        the unsharded result.  Heads for which this shard holds nothing come
        back as the neutral element.
        """
        queries = np.asarray(queries, dtype=np.float32)
        num_heads, head_dim = queries.shape
        partials, breakdowns = self._layer_partials(
            queries, keys, values, window_positions, retrieved_positions
        )
        if not partials:
            return PartialAttention.empty(num_heads, head_dim), breakdowns
        return combine_partial_attention(partials), breakdowns

    def merge_sharded_partials(
        self,
        partials: list[PartialAttention],
        num_heads: int,
        head_dim: int,
    ) -> np.ndarray:
        """Merge per-shard partial-attention outputs into the layer output.

        The cross-shard merge of the data-centric engine: each entry is one
        shard's combined partial (from :meth:`shard_layer_partial`) or the
        session's local-KV partial, computed over disjoint position subsets.
        Per-head-empty entries (a shard that held no tokens for some head) are
        tolerated; heads empty in every shard fall back to zeros.
        """
        return self._merge_per_head(list(partials), num_heads, head_dim)

    def stacked_layer_output(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        window_positions: np.ndarray,
        retrieved_positions: list[np.ndarray],
        local_keys: list[np.ndarray | None],
        local_values: list[np.ndarray | None],
    ) -> tuple[np.ndarray, list[AttentionBreakdown]]:
        """Sparse attention for several sessions stacked over one shared context.

        The cross-request sibling of :meth:`layer_output`: every session in a
        compatibility group reads the *same* stored-context KV with the same
        window positions, so the window partial is one einsum over the
        ``(sessions, kv_heads, group, d)`` query stack against the un-copied
        ``(kv_heads, window, d)`` gather, the retrieved partial reuses the
        padded per-head gather with a session-aware KV-head mapping, and the
        per-session local KV (ragged — sessions have generated different
        numbers of tokens) is padded/masked into one batch.  Row ``(s, h)``
        of the output (and entry ``s * num_heads + h`` of the breakdown list)
        matches ``layer_output`` run on session ``s`` alone.

        Parameters
        ----------
        queries:
            ``(num_sessions, num_query_heads, head_dim)`` decode queries.
        keys / values:
            ``(num_kv_heads, n, head_dim)`` KV of the shared stored context.
        window_positions:
            Window-cache positions (identical across the group by the
            compatibility key: same context, prefix and config).
        retrieved_positions:
            One position array per stacked head, session-major
            (``num_sessions * num_query_heads`` entries, each duplicate-free).
        local_keys / local_values:
            Per-session unmaterialised KV ``(num_kv_heads, m_s, head_dim)``
            or ``None``; lengths ``m_s`` may differ.
        """
        queries = np.asarray(queries, dtype=np.float32)
        num_sessions, num_heads, head_dim = queries.shape
        num_kv_heads = keys.shape[0]
        group = num_heads // num_kv_heads
        total = num_sessions * num_heads
        window_positions = np.asarray(window_positions, dtype=np.int64)
        scale = np.float32(self.scale if self.scale is not None else 1.0 / np.sqrt(head_dim))
        grouped_q = queries.reshape(num_sessions, num_kv_heads, group, head_dim)

        in_window = None
        if window_positions.size:
            in_window = np.zeros(keys.shape[1], dtype=bool)
            in_window[window_positions] = True
        dedup = self._dedup_and_pad(retrieved_positions, in_window, total, keys.shape[1])

        breakdowns = [AttentionBreakdown() for _ in range(total)]
        partials: list[PartialAttention] = []

        if window_positions.size:
            window_keys = keys[:, window_positions, :]
            window_values = values[:, window_positions, :]
            logits = np.einsum("skgd,kmd->skgm", grouped_q, window_keys) * scale
            max_logit = logits.max(axis=3)
            exps = np.exp(logits - max_logit[..., None])
            sum_exp = exps.sum(axis=3)
            output = np.einsum("skgm,kmd->skgd", exps, window_values) / sum_exp[..., None]
            partials.append(
                PartialAttention(
                    output=output.reshape(total, head_dim).astype(np.float32),
                    max_logit=max_logit.reshape(total).astype(np.float32),
                    sum_exp=sum_exp.reshape(total).astype(np.float32),
                )
            )
            for breakdown in breakdowns:
                breakdown.num_window_tokens = int(window_positions.size)

        if dedup is not None:
            padded, mask, counts = dedup
            kv_of_head = np.tile(np.arange(num_heads, dtype=np.int64) // group, num_sessions)
            partials.append(
                self._masked_retrieved_partial(
                    queries.reshape(total, head_dim), keys, values, padded, mask, kv_of_head
                )
            )
            for row, breakdown in enumerate(breakdowns):
                breakdown.num_retrieved_tokens = int(counts[row])

        local_lengths = [0 if lk is None else int(lk.shape[1]) for lk in local_keys]
        max_local = max(local_lengths, default=0)
        if max_local > 0:
            padded_keys = np.zeros((num_sessions, num_kv_heads, max_local, head_dim), dtype=np.float32)
            padded_values = np.zeros_like(padded_keys)
            local_mask = np.zeros((num_sessions, max_local), dtype=bool)
            for s, (lk, lv, length) in enumerate(zip(local_keys, local_values, local_lengths)):
                if length:
                    padded_keys[s, :, :length, :] = lk
                    padded_values[s, :, :length, :] = lv
                    local_mask[s, :length] = True
            logits = np.einsum("skgd,skmd->skgm", grouped_q, padded_keys) * scale
            logits = np.where(local_mask[:, None, None, :], logits, np.float32(-np.inf))
            max_logit = logits.max(axis=3)
            safe_max = np.where(np.isneginf(max_logit), np.float32(0.0), max_logit)
            exps = np.where(
                local_mask[:, None, None, :],
                np.exp(logits - safe_max[..., None]),
                np.float32(0.0),
            )
            sum_exp = exps.sum(axis=3)
            denom = np.where(sum_exp == 0.0, np.float32(1.0), sum_exp)
            output = np.einsum("skgm,skmd->skgd", exps, padded_values) / denom[..., None]
            partials.append(
                PartialAttention(
                    output=output.reshape(total, head_dim).astype(np.float32),
                    max_logit=max_logit.reshape(total).astype(np.float32),
                    sum_exp=sum_exp.reshape(total).astype(np.float32),
                )
            )
            for s, length in enumerate(local_lengths):
                for head in range(num_heads):
                    breakdowns[s * num_heads + head].num_local_tokens = length

        merged = self._merge_per_head(partials, total, head_dim)
        return merged.reshape(num_sessions, num_heads, head_dim), breakdowns

    @staticmethod
    def _dedup_and_pad(
        positions_per_row: list[np.ndarray],
        in_window: np.ndarray | None,
        num_rows: int,
        num_positions: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Window-dedup the per-row retrieved sets and pad them to one batch.

        One concatenated mask filter plus one composite-key argsort replace a
        per-row ``setdiff1d``: each row comes out sorted by position with
        window overlap removed, matching the per-head path.  Rows must be
        duplicate-free on input (retrieval outcomes are).  Returns
        ``(padded (rows, max_len), mask (rows, max_len), counts (rows,))``,
        or ``None`` when nothing survives the dedup.
        """
        lengths = np.fromiter(
            (p.size for p in positions_per_row), dtype=np.int64, count=num_rows
        )
        if int(lengths.sum()) == 0:
            return None
        cat = np.concatenate([np.asarray(p, dtype=np.int64) for p in positions_per_row])
        row_ids = np.repeat(np.arange(num_rows, dtype=np.int64), lengths)
        if in_window is not None:
            keep = ~in_window[cat]
            cat, row_ids = cat[keep], row_ids[keep]
            if cat.size == 0:
                return None
        order = np.argsort(row_ids * np.int64(num_positions) + cat)
        cat, row_ids = cat[order], row_ids[order]
        counts = np.bincount(row_ids, minlength=num_rows)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        cols = np.arange(cat.size, dtype=np.int64) - starts[row_ids]
        max_len = int(counts.max())
        padded = np.zeros((num_rows, max_len), dtype=np.int64)
        mask = np.zeros((num_rows, max_len), dtype=bool)
        padded[row_ids, cols] = cat
        mask[row_ids, cols] = True
        return padded, mask, counts

    def _masked_retrieved_partial(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        padded: np.ndarray,
        mask: np.ndarray,
        kv_of_head: np.ndarray,
    ) -> PartialAttention:
        """Partial attention over padded per-row retrieved sets.

        ``padded``/``mask`` come from :meth:`_dedup_and_pad`; ``kv_of_head``
        maps each row to its KV head (session-major when rows stack several
        sessions over one shared context).  Rows with nothing retrieved come
        back as the per-head neutral element (``max_logit=-inf``,
        ``sum_exp=0``).
        """
        num_heads, head_dim = queries.shape
        gathered_keys = keys[kv_of_head[:, None], padded, :]
        gathered_values = values[kv_of_head[:, None], padded, :]
        scale = self.scale if self.scale is not None else 1.0 / np.sqrt(head_dim)
        logits = np.matmul(gathered_keys, queries[:, :, None])[..., 0] * np.float32(scale)
        logits = np.where(mask, logits, np.float32(-np.inf))
        max_logit = logits.max(axis=1)
        empty = np.isneginf(max_logit)
        safe_max = np.where(empty, np.float32(0.0), max_logit)
        exps = np.where(mask, np.exp(logits - safe_max[:, None]), np.float32(0.0))
        sum_exp = exps.sum(axis=1)
        denom = np.where(sum_exp == 0.0, np.float32(1.0), sum_exp)
        output = np.matmul(exps[:, None, :], gathered_values)[:, 0, :] / denom[:, None]
        return PartialAttention(
            output=output.astype(np.float32),
            max_logit=max_logit.astype(np.float32),
            sum_exp=sum_exp.astype(np.float32),
        )

    @staticmethod
    def _merge_per_head(partials: list[PartialAttention], num_heads: int, head_dim: int) -> np.ndarray:
        """Merge batched partials, tolerating per-head-empty statistics.

        ``merge_partial_attention`` only drops partials that are empty for
        *every* head; here a partial may be empty for some heads only (e.g. a
        head that retrieved nothing), so the weights are formed against a
        finite per-head maximum and all-empty heads fall back to zeros — the
        same result the per-head path produces when a head has no partials.
        """
        partials = [p for p in partials if not p.is_empty()]
        if not partials:
            return np.zeros((num_heads, head_dim), dtype=np.float32)
        if len(partials) == 1:
            return partials[0].output.copy()
        global_max = np.max(np.stack([p.max_logit for p in partials], axis=0), axis=0)
        safe_max = np.where(np.isneginf(global_max), np.float32(0.0), global_max)
        total_weight = np.zeros(num_heads, dtype=np.float32)
        accumulated = np.zeros((num_heads, head_dim), dtype=np.float32)
        for part in partials:
            weight = part.sum_exp * np.exp(part.max_logit - safe_max)
            accumulated += part.output * weight[:, None]
            total_weight += weight
        denom = np.where(total_weight == 0.0, np.float32(1.0), total_weight)
        return (accumulated / denom[:, None]).astype(np.float32)

    def full_output(
        self,
        query: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        local_keys: np.ndarray | None = None,
        local_values: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact (full) attention for one head, still computed data-centrically."""
        positions = np.arange(keys.shape[0], dtype=np.int64)
        output, _ = self.head_output(
            query,
            keys,
            values,
            window_positions=positions,
            retrieved_positions=np.empty(0, dtype=np.int64),
            local_keys=local_keys,
            local_values=local_values,
        )
        return output
