"""The serving layer: a memory-governed, multi-request scheduler over the DB.

The paper's deployment story (Section 8) is a Model-as-a-Service provider
running many concurrent requests against a library of stored contexts.  This
module provides that serving stack on top of :class:`~repro.core.db.DB`:

* ``submit()`` enqueues a request (with optional priority / SLO class) and
  returns a :class:`~repro.core.handles.RequestHandle` — live ``status``, an
  incremental ``tokens()`` stream, a blocking ``result()``, and ``cancel()``;
* ``step()`` runs one scheduler round: admission control against a global
  GPU-memory budget, then one unit of work per in-flight request — a prefill
  chunk, or one decode token with **all decode-ready requests batched into a
  single forward pass** (``decode_batching``), so long prefills interleave
  with other requests' decodes and decode cost is amortised across the batch;
* under the ``slo`` policy with ``preemption`` enabled, an SLO-critical
  arrival that finds every slot taken pauses the in-flight request with the
  most TTFT slack (its reservation released, its stored context spillable)
  until a slot frees;
* ``cancel()`` tears a request down wherever it lives — queued, in flight,
  or preempted — releasing its admission reservation and unpinning its
  stored context (state ``CANCELLED`` end-to-end);
* ``chat()`` opens a :class:`~repro.core.handles.ChatSession`: each turn
  extends one stored context via ``DB.store`` so the next turn's prefill
  reuses the whole history's KV through the token-trie prefix match;
* ``drain()`` steps until everything submitted has finished;
* ``serve()`` remains the one-request convenience wrapper (a thin
  ``submit().result()``).

The substrate is single-threaded NumPy, so "concurrency" means interleaving
work across in-flight sessions rather than parallel threads — but the
accounting (per-request stats, queue/TTFT/TPOT, admission decisions, buffer
hit ratios, peak resident bytes) mirrors what a production deployment would
export.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import RequestFailedError
from ..llm.generation import GenerationLoop, GenerationResult
from ..llm.model import TransformerModel
from ..llm.sampling import sample_token
from ..scheduler import (
    DEFAULT_TENANT,
    AdmissionController,
    InFlightRequest,
    Request,
    RequestScheduler,
    TenantGovernor,
    TenantSpec,
    make_policy,
)
from ..simulator.cost_model import CostModel
from ..simulator.slo import SLO, SLOReport, SLOTracker
from ..storage.backend import StorageBackend
from ..storage.buffer_manager import BufferStats
from .config import AlayaDBConfig
from .context_store import ContextStore
from .db import DB
from .decode_round import CrossRequestDecodeRound, DynamicAttentionPolicy, StageTimings
from .handles import ChatSession, RequestHandle
from .session import Session

__all__ = ["RequestRecord", "ServiceStats", "InferenceService"]


@dataclass
class RequestRecord:
    """Everything the service tracked about one served request."""

    request_id: int
    prompt_tokens: int
    reused_tokens: int
    generated_tokens: int
    ttft_seconds: float
    """Wall-clock first-token latency: admission → first sampled token,
    including time parked between interleaved prefill chunks."""
    tpot_seconds: float
    modeled_tpot_seconds: float
    gpu_resident_bytes: int
    prefill_compute_seconds: float = 0.0
    """Prefill compute only (the old TTFT figure); excludes parked time."""
    queue_seconds: float = 0.0
    preemptions: int = 0
    stored_context_id: str | None = None

    @property
    def reuse_ratio(self) -> float:
        return self.reused_tokens / max(self.prompt_tokens, 1)


@dataclass
class ServiceStats:
    """Aggregate statistics over every request served so far."""

    records: list[RequestRecord] = field(default_factory=list)
    rejected: int = 0
    failed: int = 0
    """Requests whose session setup raised (queryable via ``result()``)."""
    cancelled: int = 0
    """Requests the client cancelled before they finished."""
    buffer: BufferStats | None = None
    """Live view of the DB's context-residency pool counters."""
    decode_timings: StageTimings | None = None
    """Live per-stage decode wall-time split (retrieval vs. partial-attention
    merge vs. dense model math) summed over every decode round served."""
    store: ContextStore | None = None
    """Live view of the context store, exposing the disk tier: spilled and
    on-disk byte totals plus reload counts split deserialize vs. rebuild."""
    tenants: TenantGovernor | None = None
    """Live view of the tenant governor (``None`` without tenant governance):
    per-tenant in-flight/queued/deferred/429/tokens-served counters."""

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def mean_reuse_ratio(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.reuse_ratio for r in self.records]))

    @property
    def peak_gpu_resident_bytes(self) -> int:
        return max((r.gpu_resident_bytes for r in self.records), default=0)

    @property
    def mean_modeled_tpot(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.modeled_tpot_seconds for r in self.records]))

    @property
    def total_generated_tokens(self) -> int:
        return sum(r.generated_tokens for r in self.records)

    @property
    def buffer_hit_ratio(self) -> float:
        return self.buffer.hit_ratio if self.buffer is not None else 0.0

    @property
    def spilled_kv_bytes(self) -> int:
        """KV bytes of contexts currently living only on the disk tier."""
        return self.store.spilled_kv_bytes if self.store is not None else 0

    @property
    def disk_kv_bytes(self) -> int:
        """On-disk bytes of persisted KV snapshots."""
        return self.store.disk_kv_bytes if self.store is not None else 0

    @property
    def disk_index_bytes(self) -> int:
        """On-disk bytes of serialized fine/coarse index blobs."""
        return self.store.disk_index_bytes if self.store is not None else 0

    @property
    def context_reloads_deserialized(self) -> int:
        """Reloads whose indexes came back by deserialization (no rebuild)."""
        return self.store.reload_deserialized_count if self.store is not None else 0

    @property
    def context_reloads_rebuilt(self) -> int:
        """Reloads that fell back to rebuilding indexes from the keys."""
        return self.store.reload_rebuilt_count if self.store is not None else 0

    @property
    def throttled(self) -> int:
        """Submissions refused by per-tenant backpressure (HTTP 429s)."""
        if self.tenants is None:
            return 0
        return sum(
            self.tenants.stats(name).throttled for name in self.tenants.known_tenants()
        )

    def tenant_rows(self, queued_by_tenant: dict[str, int] | None = None) -> dict[str, dict]:
        """Per-tenant observability rows (empty without tenant governance)."""
        if self.tenants is None:
            return {}
        return self.tenants.snapshot(queued_by_tenant)


class InferenceService:
    """Serves generation requests through AlayaDB with SLO accounting.

    Also the scheduler's execution backend: the
    :class:`~repro.scheduler.RequestScheduler` calls back into
    ``estimate_request_bytes`` / ``begin_request`` / ``prefill_chunk`` /
    ``decode_step`` / ``finish_request`` to run admitted requests.
    """

    MAX_RETAINED_RESULTS = 1024
    """Finished-request outcomes kept for :meth:`result` lookups; beyond this
    the oldest are dropped so a long-running service does not accumulate
    every generation it ever produced."""

    def __init__(
        self,
        model: TransformerModel,
        config: AlayaDBConfig | None = None,
        cost_model: CostModel | None = None,
        store_conversations: bool = False,
        storage_dir=None,
        backend: StorageBackend | None = None,
    ):
        self.model = model
        self.config = config or AlayaDBConfig()
        self.db = DB(self.config, storage_dir=storage_dir, backend=backend)
        self.loop = GenerationLoop(model)
        self.cost_model = cost_model or CostModel()
        self.store_conversations = store_conversations
        self.decode_timings = StageTimings()
        """Per-stage decode wall time (retrieval / merge / dense) across all
        decode rounds served so far; surfaced through :meth:`memory_report`."""
        self.tenants = (
            TenantGovernor(
                specs=self.config.tenants,
                quantum_tokens=self.config.tenant_quantum_tokens,
                strict=self.config.strict_tenants,
                default_spec=TenantSpec(
                    name=DEFAULT_TENANT, max_queued=self.config.tenant_default_max_queued
                ),
            )
            if self.config.tenant_governance_enabled
            else None
        )
        self.stats = ServiceStats(
            buffer=self.db.buffer_stats,
            decode_timings=self.decode_timings,
            store=self.db.store_registry,
            tenants=self.tenants,
        )
        self.slo_tracker = SLOTracker(self.config.slo)
        self.scheduler = RequestScheduler(
            backend=self,
            policy=make_policy(self.config.scheduler_policy),
            admission=AdmissionController(self.config.scheduler_gpu_budget_bytes),
            max_inflight=self.config.max_inflight_requests,
            drain_index_builds=self.config.scheduler_drain_index_builds,
            decode_batching=self.config.decode_batching,
            preemption=self.config.preemption,
            preemption_slack_seconds=self.config.preemption_slack_seconds,
            tenants=self.tenants,
        )
        self._attention_policy = (
            DynamicAttentionPolicy(
                dense_watermark=self.config.attention_policy_dense_watermark,
                sparse_watermark=self.config.attention_policy_sparse_watermark,
                min_dwell_steps=self.config.attention_policy_min_dwell_steps,
            )
            if self.config.dynamic_attention_policy
            else None
        )
        self._results: OrderedDict[int, tuple[GenerationResult, RequestRecord]] = OrderedDict()
        self._failures: OrderedDict[int, str] = OrderedDict()
        self._live: dict[int, InFlightRequest] = {}
        """In-flight (or preempted) execution state by request id, so handles
        can stream ``generated`` tokens while the request runs."""
        self._request_counter = 0
        self._chat_counter = 0

    # ------------------------------------------------------------------
    # document management
    # ------------------------------------------------------------------
    def ingest(self, document: str | list[int], context_id: str | None = None) -> str:
        """Import a document (prefill + index construction) for later reuse.

        With ``lazy_index_build`` configured, fine indexes are deferred to the
        first sparse use, cutting ingest latency.
        """
        context = self.db.prefill_and_import(self.model, document, context_id=context_id)
        return context.context_id

    @property
    def num_contexts(self) -> int:
        return self.db.num_contexts

    # ------------------------------------------------------------------
    # serving: submit / step / drain
    # ------------------------------------------------------------------
    def submit(
        self,
        prompt: str | list[int],
        max_new_tokens: int = 16,
        priority: int = 0,
        slo: SLO | None = None,
        gpu_memory_budget_bytes: int | None = None,
        prefill_chunk_tokens: int | None = None,
        store_context_id: str | None = None,
        tenant: str | None = None,
    ) -> RequestHandle:
        """Enqueue a request; returns a :class:`RequestHandle`.

        The handle streams tokens (``for t in handle.tokens()``), blocks for
        the outcome (``handle.result()``), and cancels (``handle.cancel()``).
        Invalid requests — an empty prompt, negative ``max_new_tokens``, a
        non-positive ``prefill_chunk_tokens`` override — are rejected here
        with a ``ValueError`` instead of failing mid-round.

        With tenant governance active, ``tenant`` attributes the request for
        weighted fairness and quotas; an unknown tenant under
        ``strict_tenants`` raises :class:`UnknownTenantError`, and a tenant
        at its queue-depth limit raises :class:`TenantThrottledError`
        (backpressure — the HTTP frontend's 429) *before* anything queues.
        """
        if isinstance(prompt, str) and not prompt:
            # the byte tokenizer would still emit a BOS token; reject the
            # empty *text* explicitly so the error names the real problem
            raise ValueError("prompt must not be an empty string")
        tenant_name = tenant or DEFAULT_TENANT
        if self.tenants is not None:
            spec = self.tenants.resolve(tenant_name)  # UnknownTenantError when strict
            tenant_name = spec.name
            self.tenants.check_backpressure(
                tenant_name, self.scheduler.queued_by_tenant().get(tenant_name, 0)
            )
        self._request_counter += 1
        request = Request(
            request_id=self._request_counter,
            prompt_tokens=self.db.tokenize(prompt),
            max_new_tokens=max_new_tokens,
            priority=priority,
            slo=slo,
            gpu_memory_budget_bytes=gpu_memory_budget_bytes,
            prefill_chunk_tokens=prefill_chunk_tokens,
            store_context_id=store_context_id,
            tenant=tenant_name,
        )
        self.scheduler.submit(request)
        return RequestHandle(self, request)

    def chat(
        self, context_id: str | None = None, max_new_tokens: int = 16
    ) -> ChatSession:
        """Open a multi-turn :class:`ChatSession` with cross-turn KV reuse.

        ``context_id`` names the stored conversation context (auto-generated
        when omitted); passing the id of an existing context resumes that
        conversation.
        """
        return ChatSession(self, context_id=context_id, max_new_tokens=max_new_tokens)

    def next_chat_context_id(self) -> str:
        """A fresh context id for an anonymous :class:`ChatSession`."""
        self._chat_counter += 1
        return f"chat-{self._chat_counter:04d}"

    def cancel(self, request_id: int) -> bool:
        """Cancel a request (queued, in flight, or preempted).

        Releases its admission reservation, closes its session (unpinning the
        stored context so the store may spill it), and moves the request to
        state ``CANCELLED``.  Returns ``False`` as an idempotent no-op when
        the request is already terminal or unknown.
        """
        cancelled = self.scheduler.cancel(request_id)
        if cancelled:
            self.stats.cancelled += 1
        return cancelled

    def step(self) -> list[int]:
        """One scheduler round; returns ids of requests it finished."""
        return [fl.request.request_id for fl in self.scheduler.step()]

    def drain(self, max_steps: int | None = None) -> list[tuple[GenerationResult, RequestRecord]]:
        """Run the scheduler until all submitted requests are done."""
        finished = self.scheduler.drain(max_steps=max_steps)
        return [
            self._results[fl.request.request_id]
            for fl in finished
            if fl.request.request_id in self._results
        ]

    def result(
        self, request_id: int | RequestHandle
    ) -> tuple[GenerationResult, RequestRecord] | None:
        """The outcome of a finished request (None while pending or rejected).

        Accepts a request id or the :class:`RequestHandle` ``submit``
        returned.  Raises :class:`RequestFailedError` when the request's
        session setup raised mid-round (state FAILED) — the original error is
        in the message.
        """
        if isinstance(request_id, RequestHandle):
            request_id = request_id.request_id
        if request_id in self._failures:
            raise RequestFailedError(
                f"request {request_id} failed during session setup: "
                f"{self._failures[request_id]}"
            )
        return self._results.get(request_id)

    def generated_tokens(self, request_id: int) -> list[int]:
        """Tokens generated so far for a request (live view for streaming).

        While the request is in flight this is its growing ``generated``
        list; after it finishes, the final result's tokens.  Queued,
        rejected, and cancelled requests have none.
        """
        inflight = self._live.get(request_id)
        if inflight is not None:
            return inflight.generated
        outcome = self._results.get(request_id)
        if outcome is not None:
            return outcome[0].generated_tokens
        return []

    def serve(
        self,
        prompt: str | list[int],
        max_new_tokens: int = 16,
        gpu_memory_budget_bytes: int | None = None,
    ) -> tuple[GenerationResult, RequestRecord]:
        """Serve one request end to end (a thin ``submit().result()``)."""
        return self.submit(
            prompt, max_new_tokens=max_new_tokens, gpu_memory_budget_bytes=gpu_memory_budget_bytes
        ).result()

    # ------------------------------------------------------------------
    # scheduler backend protocol
    # ------------------------------------------------------------------
    def estimate_request_bytes(self, request: Request) -> int:
        """Estimated GPU-resident footprint: window + KV appended in flight."""
        match = self.db.store_registry.find_longest_prefix(request.prompt_tokens)
        reused = (
            match.prefix_length
            if match.is_hit and match.prefix_length >= self.config.min_reuse_tokens
            else 0
        )
        per_token = self.model.kv_bytes_per_token()
        appended_tokens = len(request.prompt_tokens) - reused + request.max_new_tokens
        window_tokens = min(self.config.window_total_tokens, reused)
        return (appended_tokens + window_tokens) * per_token

    def begin_request(self, request: Request) -> InFlightRequest:
        session, truncated = self.db.create_session(
            request.prompt_tokens, gpu_memory_budget_bytes=request.gpu_memory_budget_bytes
        )
        # an empty suffix (full prefix reuse) still needs one forward pass to
        # produce first-token logits, exactly like GenerationLoop.run_tokens
        pending = list(truncated) if truncated else [self.loop.tokenizer.bos_id]
        session.timing_sink = self.decode_timings
        inflight = InFlightRequest(
            request=request,
            session=session,
            pending_tokens=pending,
            truncated_tokens=list(truncated),
            rng=self.loop.sampling.make_rng(),
        )
        self._live[request.request_id] = inflight
        return inflight

    def prefill_chunk(self, inflight: InFlightRequest) -> None:
        chunk_tokens = (
            inflight.request.prefill_chunk_tokens or self.config.prefill_chunk_tokens
        )
        chunk = inflight.pending_tokens[:chunk_tokens]
        del inflight.pending_tokens[: len(chunk)]
        start = time.perf_counter()
        logits, _ = self.model.prefill(np.asarray(chunk, dtype=np.int64), inflight.session)
        inflight.prefill_seconds += time.perf_counter() - start
        if not inflight.pending_tokens:
            if inflight.request.max_new_tokens > 0:
                self._append_token(
                    inflight, sample_token(logits, self.loop.sampling, inflight.rng)
                )
            else:
                # zero tokens requested: the request is served by prefill
                # alone; its first-token latency is the prefill completion
                inflight.first_token_seconds = time.monotonic() - inflight.admitted_at

    def _apply_attention_policy(self, inflights: Sequence[InFlightRequest]) -> None:
        """Advance the dynamic dense/sparse policy for every decoding session.

        Pressure is the admission controller's committed-to-budget ratio;
        without a budget the policy has nothing to react to and stays off
        (overrides cleared so sessions keep their planned sparse routing).
        """
        policy = self._attention_policy
        if policy is None:
            return
        budget = self.scheduler.admission.budget_bytes
        if not budget:
            for inflight in inflights:
                inflight.session.decode_mode_override = None
            return
        pressure = self.scheduler.admission.committed_bytes / budget
        for inflight in inflights:
            policy.apply(inflight.request.request_id, inflight.session, pressure)

    def decode_step(self, inflight: InFlightRequest) -> None:
        self._apply_attention_policy([inflight])
        sparse_before = self.decode_timings.sparse_seconds
        start = time.perf_counter()
        logits = self.model.decode_step(inflight.generated[-1], inflight.session)
        wall = time.perf_counter() - start
        self.decode_timings.dense_seconds += max(
            wall - (self.decode_timings.sparse_seconds - sparse_before), 0.0
        )
        self.decode_timings.rounds += 1
        inflight.decode_seconds.append(wall)
        self._append_token(inflight, sample_token(logits, self.loop.sampling, inflight.rng))

    def decode_batch(self, inflights: Sequence[InFlightRequest]) -> None:
        """One batched forward pass over every decode-ready request.

        The shared dense work (embedding, projections, MLP, LM head) runs
        once over the stacked batch; with ``cross_request_sparse_batching``
        a :class:`~repro.core.decode_round.CrossRequestDecodeRound` also
        stacks plan-compatible sessions' retrieval and partial-attention
        merges per layer, so the whole round is one retrieval + attention
        pass rather than one per request.  The wall time is split evenly
        across the batch for per-request TPOT accounting.
        """
        self._apply_attention_policy(inflights)
        attention_round = None
        if self.config.cross_request_sparse_batching and len(inflights) > 1:
            attention_round = CrossRequestDecodeRound(
                [fl.session for fl in inflights], timings=self.decode_timings
            )
        sparse_before = self.decode_timings.sparse_seconds
        start = time.perf_counter()
        logits = self.model.decode_batch(
            [fl.generated[-1] for fl in inflights],
            [fl.session for fl in inflights],
            attention_round=attention_round,
        )
        wall = time.perf_counter() - start
        self.decode_timings.dense_seconds += max(
            wall - (self.decode_timings.sparse_seconds - sparse_before), 0.0
        )
        self.decode_timings.rounds += 1
        per_request = wall / len(inflights)
        for inflight, row in zip(inflights, logits):
            inflight.decode_seconds.append(per_request)
            self._append_token(inflight, sample_token(row, self.loop.sampling, inflight.rng))

    def _append_token(self, inflight: InFlightRequest, token: int) -> None:
        if inflight.first_token_seconds is None:
            inflight.first_token_seconds = time.monotonic() - inflight.admitted_at
        inflight.generated.append(token)
        if token == self.loop.tokenizer.eos_id:
            inflight.finished_by_eos = True

    def finish_request(self, inflight: InFlightRequest) -> None:
        request = inflight.request
        self._live.pop(request.request_id, None)
        if self._attention_policy is not None:
            self._attention_policy.forget(request.request_id)
        ttft = (
            inflight.first_token_seconds
            if inflight.first_token_seconds is not None
            else inflight.prefill_seconds
        )
        result = GenerationResult(
            prompt_tokens=inflight.truncated_tokens,
            generated_tokens=inflight.generated,
            text=self.loop.tokenizer.decode(inflight.generated),
            ttft_seconds=ttft,
            decode_seconds=inflight.decode_seconds,
            finished_by_eos=inflight.finished_by_eos,
        )
        record = self._record(request.request_id, request.prompt_tokens, inflight.session, result)
        record.prefill_compute_seconds = inflight.prefill_seconds
        record.queue_seconds = inflight.queue_seconds
        record.preemptions = inflight.preemptions
        if request.store_context_id is not None:
            stored = self._store_session_context(inflight, request.store_context_id)
            record.stored_context_id = stored.context_id
        elif self.store_conversations:
            stored = self.db.store(inflight.session, context_id=f"conversation-{request.request_id:04d}")
            record.stored_context_id = stored.context_id
        inflight.session.close()
        self.stats.records.append(record)
        self._results[request.request_id] = (result, record)
        while len(self._results) > self.MAX_RETAINED_RESULTS:
            self._results.popitem(last=False)

    def _store_session_context(self, inflight: InFlightRequest, context_id: str):
        """Persist a finished session's full context under ``context_id``.

        The stored token sequence mirrors exactly what the model consumed:
        the reused prefix, the prefilled suffix (a lone BOS when the prefix
        covered the whole prompt), then every generated token that was fed
        back through decode.  The final sampled token was never fed back, so
        it has no KV yet — it is prefilled as part of the next turn's suffix.
        """
        request = inflight.request
        session = inflight.session
        kv_tokens = session.sequence_length(0)
        fed = list(request.prompt_tokens[: session.reused_prefix_length])
        fed += inflight.truncated_tokens if inflight.truncated_tokens else [self.loop.tokenizer.bos_id]
        fed += inflight.generated[: max(kv_tokens - len(fed), 0)]
        # fine indexes are deferred: rebuilding a graph index over the whole
        # transcript on *every* turn would dominate the turn; the lazy build
        # runs once, on the first decode that actually plans a fine retrieval
        return self.db.store(
            session, tokens=fed[:kv_tokens], context_id=context_id, lazy_fine_indexes=True
        )

    def reject_request(self, request: Request) -> None:
        self.stats.rejected += 1

    def cancel_request(self, inflight: InFlightRequest) -> None:
        """Tear down a cancelled request's session.

        The scheduler already released the admission reservation; closing the
        session unpins its stored context so the context store may spill it
        again.  (A preempted victim was unpinned — and its close callback
        detached — at preemption time, so its close here unpins nothing.)
        """
        self._live.pop(inflight.request.request_id, None)
        if self._attention_policy is not None:
            self._attention_policy.forget(inflight.request.request_id)
        inflight.session.close()

    def fail_request(self, request: Request, error: Exception) -> None:
        """Record a mid-round session-setup failure for ``result()`` lookup."""
        self.stats.failed += 1
        # the scheduler already formatted the error onto the request
        self._failures[request.request_id] = request.error or repr(error)
        while len(self._failures) > self.MAX_RETAINED_RESULTS:
            self._failures.popitem(last=False)

    def preempted_request_bytes(self, inflight: InFlightRequest) -> int:
        """GPU bytes a paused request keeps resident: its session's window
        and locally appended KV survive preemption (only the stored context
        becomes spillable), so that slice of the reservation is not released."""
        return inflight.session.gpu_memory_bytes()

    def preempt_request(self, inflight: InFlightRequest) -> None:
        """Unpin the paused session's stored context so the store may spill it.

        The session's close callback (which performs the same unpin) is
        detached so that cancelling or tearing down the paused session cannot
        unpin twice and release another session's pin on the same context.
        """
        session = inflight.session
        if session.context is not None:
            session.detach_on_close()
            self.db.store_registry.unpin(session.context.context_id)

    def resume_request(self, inflight: InFlightRequest) -> None:
        """Re-pin (reloading if spilled) the resumed session's stored context."""
        session = inflight.session
        if session.context is not None:
            context_id = session.context.context_id
            # touch (not just ensure_resident) so a reload re-enters the
            # buffer-pool residency mirror like any other access path
            self.db.touch_context(context_id)
            self.db.store_registry.pin(context_id)
            session.attach_on_close(lambda: self.db.store_registry.unpin(context_id))
            session.invalidate_context_caches()

    def between_steps(self) -> None:
        """Slack work between scheduler steps: drain one deferred index build."""
        self.db.build_pending(limit=1)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _record(
        self,
        request_id: int,
        prompt_tokens: list[int],
        session: Session,
        result: GenerationResult,
    ) -> RequestRecord:
        stats = session.last_decode_stats
        per_head_distance = stats.num_distance_computations / max(stats.num_heads, 1)
        modeled_tpot = self.cost_model.sparse_decode_seconds(
            num_selected_tokens=int(stats.mean_selected_per_head) + stats.num_window_tokens // max(stats.num_heads, 1),
            num_distance_computations=int(per_head_distance),
        )
        self.slo_tracker.record(tpot_seconds=modeled_tpot, ttft_seconds=result.ttft_seconds)
        return RequestRecord(
            request_id=request_id,
            prompt_tokens=len(prompt_tokens),
            reused_tokens=session.reused_prefix_length,
            generated_tokens=result.num_generated,
            ttft_seconds=result.ttft_seconds,
            tpot_seconds=result.tpot_seconds,
            modeled_tpot_seconds=modeled_tpot,
            gpu_resident_bytes=session.gpu_memory_bytes(),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def slo_report(self) -> SLOReport:
        """Aggregate SLO compliance of every served request."""
        return self.slo_tracker.report()

    def require_slo(self) -> None:
        """Raise when the aggregate modelled TPOT misses the configured SLO."""
        report = self.slo_report()
        self.config.slo.require_tpot(report.tpot_mean, context="(service aggregate)")

    def memory_report(self, per_context: bool = False) -> dict:
        """Residency and buffer-pool accounting across the serving stack.

        With ``per_context=True`` a ``"contexts"`` map is added: one row per
        stored context (residency, KV footprint, pins, trie matchability) —
        what a shard-serving harness aggregates into per-worker/per-shard
        placement views.
        """
        store = self.db.store_registry
        buffer = self.db.buffer_stats
        report = {
            "resident_kv_bytes": store.resident_kv_bytes,
            "total_kv_bytes": store.total_kv_bytes,
            "spilled_kv_bytes": store.spilled_kv_bytes,
            "disk_kv_bytes": store.disk_kv_bytes,
            "disk_index_bytes": store.disk_index_bytes,
            "context_spills": store.spill_count,
            "context_reloads": store.reload_count,
            "context_reloads_deserialized": store.reload_deserialized_count,
            "context_reloads_rebuilt": store.reload_rebuilt_count,
            "manifest_generation": store.manifest_generation,
            "buffer_hits": buffer.hits,
            "buffer_misses": buffer.misses,
            "buffer_hit_ratio": buffer.hit_ratio,
            "pending_index_builds": self.db.num_pending_index_builds,
            "admission_committed_bytes": self.scheduler.admission.committed_bytes,
            "decode_retrieval_seconds": self.decode_timings.retrieval_seconds,
            "decode_merge_seconds": self.decode_timings.merge_seconds,
            "decode_dense_seconds": self.decode_timings.dense_seconds,
            "decode_rounds": self.decode_timings.rounds,
        }
        if self.tenants is not None:
            report["tenants"] = self.tenants.snapshot(self.scheduler.queued_by_tenant())
        if per_context:
            report["contexts"] = {
                context_id: {
                    "resident": context.is_resident,
                    "kv_bytes": context.kv_bytes,
                    "pin_count": store.pin_count(context_id),
                    "prefix_matchable": context.prefix_matchable,
                }
                for context_id, context in store.items()
            }
        return report
