"""A minimal serving layer on top of the DB/Session interface.

The paper's deployment story (Section 8) is a Model-as-a-Service provider
running many concurrent requests against a library of stored contexts.  This
module provides the small amount of glue such a service needs on top of
:class:`~repro.core.db.DB`:

* ingest documents once and reuse them across requests,
* create one session per request, run generation, and record the SLO metrics
  (TTFT / TPOT) and the GPU residency of every request,
* optionally persist finished conversations back into the store so follow-up
  requests reuse them.

It is intentionally synchronous — the substrate is single-threaded NumPy —
but the accounting (per-request stats, aggregate SLO report, peak resident
bytes) mirrors what a production deployment would export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..llm.generation import GenerationLoop, GenerationResult
from ..llm.model import TransformerModel
from ..simulator.cost_model import CostModel
from ..simulator.slo import SLO, SLOReport, SLOTracker
from .config import AlayaDBConfig
from .db import DB
from .session import Session

__all__ = ["RequestRecord", "ServiceStats", "InferenceService"]


@dataclass
class RequestRecord:
    """Everything the service tracked about one served request."""

    request_id: int
    prompt_tokens: int
    reused_tokens: int
    generated_tokens: int
    ttft_seconds: float
    tpot_seconds: float
    modeled_tpot_seconds: float
    gpu_resident_bytes: int
    stored_context_id: str | None = None

    @property
    def reuse_ratio(self) -> float:
        return self.reused_tokens / max(self.prompt_tokens, 1)


@dataclass
class ServiceStats:
    """Aggregate statistics over every request served so far."""

    records: list[RequestRecord] = field(default_factory=list)

    @property
    def num_requests(self) -> int:
        return len(self.records)

    @property
    def mean_reuse_ratio(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.reuse_ratio for r in self.records]))

    @property
    def peak_gpu_resident_bytes(self) -> int:
        return max((r.gpu_resident_bytes for r in self.records), default=0)

    @property
    def mean_modeled_tpot(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.modeled_tpot_seconds for r in self.records]))


class InferenceService:
    """Serves generation requests through AlayaDB with SLO accounting."""

    def __init__(
        self,
        model: TransformerModel,
        config: AlayaDBConfig | None = None,
        cost_model: CostModel | None = None,
        store_conversations: bool = False,
    ):
        self.model = model
        self.config = config or AlayaDBConfig()
        self.db = DB(self.config)
        self.loop = GenerationLoop(model)
        self.cost_model = cost_model or CostModel()
        self.store_conversations = store_conversations
        self.stats = ServiceStats()
        self.slo_tracker = SLOTracker(self.config.slo)
        self._request_counter = 0

    # ------------------------------------------------------------------
    # document management
    # ------------------------------------------------------------------
    def ingest(self, document: str | list[int], context_id: str | None = None) -> str:
        """Import a document (prefill + index construction) for later reuse."""
        context = self.db.prefill_and_import(self.model, document, context_id=context_id)
        return context.context_id

    @property
    def num_contexts(self) -> int:
        return self.db.num_contexts

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(
        self,
        prompt: str | list[int],
        max_new_tokens: int = 16,
        gpu_memory_budget_bytes: int | None = None,
    ) -> tuple[GenerationResult, RequestRecord]:
        """Serve one request end to end and record its metrics."""
        self._request_counter += 1
        request_id = self._request_counter
        prompt_tokens = self.db._tokenize(prompt)

        session, truncated = self.db.create_session(
            prompt_tokens, gpu_memory_budget_bytes=gpu_memory_budget_bytes
        )
        result = self.loop.run_tokens(truncated, cache=session, max_new_tokens=max_new_tokens)
        record = self._record(request_id, prompt_tokens, session, result)
        if self.store_conversations:
            stored = self.db.store(session, context_id=f"conversation-{request_id:04d}")
            record.stored_context_id = stored.context_id
        self.stats.records.append(record)
        return result, record

    def _record(
        self,
        request_id: int,
        prompt_tokens: list[int],
        session: Session,
        result: GenerationResult,
    ) -> RequestRecord:
        stats = session.last_decode_stats
        per_head_distance = stats.num_distance_computations / max(stats.num_heads, 1)
        modeled_tpot = self.cost_model.sparse_decode_seconds(
            num_selected_tokens=int(stats.mean_selected_per_head) + stats.num_window_tokens // max(stats.num_heads, 1),
            num_distance_computations=int(per_head_distance),
        )
        self.slo_tracker.record(tpot_seconds=modeled_tpot, ttft_seconds=result.ttft_seconds)
        return RequestRecord(
            request_id=request_id,
            prompt_tokens=len(prompt_tokens),
            reused_tokens=session.reused_prefix_length,
            generated_tokens=result.num_generated,
            ttft_seconds=result.ttft_seconds,
            tpot_seconds=result.tpot_seconds,
            modeled_tpot_seconds=modeled_tpot,
            gpu_resident_bytes=session.gpu_memory_bytes(),
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def slo_report(self) -> SLOReport:
        """Aggregate SLO compliance of every served request."""
        return self.slo_tracker.report()

    def require_slo(self) -> None:
        """Raise when the aggregate modelled TPOT misses the configured SLO."""
        report = self.slo_report()
        self.config.slo.require_tpot(report.tpot_mean, context="(service aggregate)")
