"""The ``DB`` abstraction: the entry point of AlayaDB (Table 2 of the paper).

A ``DB`` owns every stored context (prompts, KV caches, vector indexes) the
way a relational DB instance owns schemas and tables.  Applications interact
with it through three calls:

* ``create_session(prompts)`` — match the prompt against the stored contexts,
  reuse the longest common prefix, and return a :class:`Session` plus the
  *truncated* (non-reused) prompt suffix that still needs prefill;
* ``import_context(...)`` — register an already-computed context (prompt +
  KV cache) for future reuse, building its vector indexes;
* ``store(session)`` — persist everything a session accumulated (reused
  prefix + locally generated KV) as a new reusable context; this is the late
  materialization point where the local KV finally enters a physical index.

Memory governance: the DB mirrors context KV/index residency into a
:class:`~repro.storage.buffer_manager.BufferManager` so hit ratios over the
hot set are observable, and — when the config sets a
``context_store_budget_bytes`` — the underlying :class:`ContextStore` spills
cold contexts to ``storage_dir`` and reloads them on prefix hits.  Fine index
construction can be deferred (``lazy_index_build``) to the first
sparse-attention use or drained explicitly through :meth:`build_pending`.
"""

from __future__ import annotations

import itertools
import json
import re
from pathlib import Path

import numpy as np

from ..index.builder import ContextIndexBuilder, IndexBuildConfig, LayerIndexes
from ..index.coarse import CoarseBlockIndex
from ..index.serialization import deserialize_context_indexes, serialize_context_indexes
from ..kvcache.cache import DynamicCache
from ..kvcache.serialization import KVSnapshot, snapshot_from_bytes, snapshot_to_bytes
from ..llm.model import TransformerModel
from ..llm.tokenizer import ByteTokenizer
from ..errors import BufferPoolExhaustedError, ContextLoadError
from ..storage.backend import FilesystemBackend, StorageBackend, make_backend
from ..storage.blocks import BlockType, ResidencyBlock
from ..storage.buffer_manager import BufferManager, BufferStats
from ..storage.manifest import ManifestEntry
from ..sharding.plan import ShardPlan, shard_context_id, slice_snapshot
from .config import AlayaDBConfig
from .context_store import ContextStore, StoredContext
from .session import Session

__all__ = ["DB"]

BUNDLE_FORMAT_VERSION = 1
"""Format of the portable single-context bundle (``bundle.json``)."""

_UNBOUNDED_POOL_BYTES = 1 << 60
"""Buffer-pool capacity used when no context budget is configured."""


class DB:
    """The AlayaDB database object."""

    def __init__(
        self,
        config: AlayaDBConfig | None = None,
        tokenizer: ByteTokenizer | None = None,
        storage_dir: str | Path | None = None,
        backend: StorageBackend | None = None,
    ):
        self.config = config or AlayaDBConfig()
        self.tokenizer = tokenizer or ByteTokenizer()
        budget = self.config.context_store_budget_bytes
        effective_dir = storage_dir if storage_dir is not None else self.config.context_db_path
        # ``context_db_path`` (or an explicit backend) makes the store a
        # durable context database; a bare ``storage_dir`` keeps the historic
        # spill-tier-only behavior
        durable = backend is not None or self.config.context_db_path is not None
        if backend is None and self.config.storage_backend != "filesystem" and (
            effective_dir is not None or budget is not None
        ):
            backend = make_backend(self.config.storage_backend, effective_dir)
        self.store_registry = ContextStore(
            storage_dir=effective_dir,
            kv_budget_bytes=budget,
            on_spill=self._context_spilled,
            on_reload=self._context_reloaded,
            on_remove=self._context_spilled,  # same cleanup: drop mirrors
            backend=backend,
            durable=durable,
            persist_indexes=self.config.persist_fine_indexes,
        )
        self.buffer_manager = BufferManager(
            capacity_bytes=budget if budget is not None else _UNBOUNDED_POOL_BYTES
        )
        self._builder = ContextIndexBuilder(self.config.index_build)
        # recovered contexts keep their ids; continue the sequence after them
        next_ordinal = 0
        for context_id in self.store_registry.list_ids():
            match = re.fullmatch(r"ctx-(\d+)", context_id)
            if match:
                next_ordinal = max(next_ordinal, int(match.group(1)) + 1)
        self._context_counter = itertools.count(next_ordinal)
        self._pending_fine: set[str] = set()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tokenize(self, prompts: str | list[int] | np.ndarray) -> list[int]:
        if isinstance(prompts, str):
            return self.tokenizer.encode(prompts)
        return [int(t) for t in np.asarray(prompts).reshape(-1)]

    def tokenize(self, prompts: str | list[int] | np.ndarray) -> list[int]:
        """Token ids for ``prompts`` (public alias used by the serving API)."""
        return self._tokenize(prompts)

    def _next_context_id(self) -> str:
        return f"ctx-{next(self._context_counter):04d}"

    @property
    def num_contexts(self) -> int:
        return len(self.store_registry)

    def get_context(self, context_id: str) -> StoredContext:
        return self.store_registry.get(context_id)

    @property
    def buffer_stats(self) -> BufferStats:
        """Hit/miss/eviction counters of the context residency pool."""
        return self.buffer_manager.stats

    @property
    def num_pending_index_builds(self) -> int:
        return len(self._pending_fine)

    # ------------------------------------------------------------------
    # residency accounting (buffer-manager mirror of the context store)
    # ------------------------------------------------------------------
    def _kv_block_key(self, context_id: str) -> str:
        return f"kv/{context_id}"

    def _index_block_key(self, context_id: str) -> str:
        return f"index/{context_id}"

    def _mirror_block(self, key: str, nbytes: int, block_type: str) -> None:
        """Record an access to one mirrored block, refreshing a stale size.

        A context re-stored under the same id (a chat turn growing its
        transcript) changes size without leaving residency; the hit still
        counts, but the frame is swapped for one with the current byte count
        so ``used_bytes`` keeps matching what is actually resident.
        """
        try:
            block = self.buffer_manager.get(
                key, loader=lambda: ResidencyBlock(key, nbytes, block_type)
            )
        except BufferPoolExhaustedError:
            return
        if block.nbytes != nbytes:
            try:
                # put replaces the stale frame, crediting its bytes back (a
                # failed put still drops it — no stale size may linger)
                self.buffer_manager.put(ResidencyBlock(key, nbytes, block_type))
            except BufferPoolExhaustedError:
                pass

    def _account_residency(self, context: StoredContext) -> None:
        """Record an access to a context's hot data in the buffer pool.

        A resident context counts as a hit; a freshly added or reloaded one
        as a miss.  The pool is an accounting mirror — residency itself is
        governed by the ContextStore — so pool-capacity pressure is absorbed
        rather than raised.
        """
        self._mirror_block(self._kv_block_key(context.context_id), context.kv_bytes, BlockType.DATA)
        index_key = self._index_block_key(context.context_id)
        if context.fine_indexes:
            self._mirror_block(index_key, context.index_bytes, BlockType.INDEX)
        else:
            # an overwrite may have replaced an indexed context with an
            # index-less one (per-turn chat stores defer fine builds); drop
            # the stale mirror so used_bytes matches the resident reality
            self.buffer_manager.remove(index_key)

    def _context_spilled(self, context: StoredContext) -> None:
        self.buffer_manager.remove(self._kv_block_key(context.context_id))
        self.buffer_manager.remove(self._index_block_key(context.context_id))
        self._pending_fine.discard(context.context_id)

    def _context_reloaded(self, context: StoredContext) -> None:
        # with index persistence on, the store re-attached the serialized
        # indexes during the reload (bit-identical retrieval, nothing to do
        # here); anything that did *not* come back is rebuilt — coarse
        # immediately (cheap), fine lazily (first sparse use or
        # build_pending).  Query samples travel inside the persisted
        # snapshot, so a rebuild keeps the OOD query-sample benefit.
        # Contexts that opted out of an index class at import time stay
        # index-free.
        if context.wants_coarse_indexes and not context.coarse_indexes:
            self._build_coarse_indexes(context)
        if context.wants_fine_indexes and not context.has_fine_indexes:
            self._pending_fine.add(context.context_id)

    def touch_context(self, context_id: str) -> StoredContext:
        """Reload (if spilled) and account one access to a context's hot data.

        The access-accounting entry point for paths outside
        :meth:`create_session` — e.g. a preempted request resuming — so the
        residency mirror stays in step with what is actually resident: a
        spilled context records a miss when the reload repopulates the pool,
        an already-resident one a hit.
        """
        context = self.store_registry.ensure_resident(context_id)
        self._account_residency(context)
        return context

    # ------------------------------------------------------------------
    # Table 2: DB.create_session(prompts) -> Session, prompts
    # ------------------------------------------------------------------
    def create_session(
        self,
        prompts: str | list[int] | np.ndarray,
        gpu_memory_budget_bytes: int | None = None,
    ) -> tuple[Session, list[int]]:
        """Create a session for ``prompts``; returns it plus the truncated prompt.

        The longest common prefix between the prompt and any stored context is
        reused through the session; only the remaining suffix is returned and
        must be prefilled by the caller's model.  A matched context that was
        spilled to disk is transparently reloaded, and it stays pinned in
        memory until the session is closed.
        """
        tokens = self._tokenize(prompts)
        match = self.store_registry.find_longest_prefix(tokens)
        useful = match.is_hit and match.prefix_length >= self.config.min_reuse_tokens
        context: StoredContext | None = None
        reused = 0
        index_provider = None
        on_close = None
        if useful:
            context_id = match.context.context_id
            context = self.touch_context(context_id)
            reused = match.prefix_length
            self.store_registry.pin(context_id)
            index_provider = lambda ctx=context: self._ensure_fine_indexes(ctx)
            on_close = lambda cid=context_id: self.store_registry.unpin(cid)
        session = Session(
            config=self.config,
            context=context,
            reused_prefix_length=reused,
            num_layers=context.num_layers if context is not None else None,
            gpu_memory_budget_bytes=gpu_memory_budget_bytes,
            index_provider=index_provider,
            on_close=on_close,
        )
        truncated = tokens[reused:]
        return session, truncated

    # ------------------------------------------------------------------
    # Table 2: DB.import(prompts, kv_cache)
    # ------------------------------------------------------------------
    def import_context(
        self,
        prompts: str | list[int] | np.ndarray,
        kv_cache: DynamicCache | KVSnapshot,
        query_samples: dict[int, np.ndarray] | None = None,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
        lazy_fine_indexes: bool | None = None,
    ) -> StoredContext:
        """Import an already-computed context (prompt + KV cache) for reuse.

        ``lazy_fine_indexes`` (default: the config's ``lazy_index_build``)
        defers fine-index construction off the ingest path; the indexes are
        built on the context's first sparse-attention use or by
        :meth:`build_pending`.
        """
        tokens = self._tokenize(prompts)
        if isinstance(kv_cache, KVSnapshot):
            snapshot = kv_cache
        else:
            keys = {layer: kv_cache.keys(layer).copy() for layer in range(kv_cache.num_layers)}
            values = {layer: kv_cache.values(layer).copy() for layer in range(kv_cache.num_layers)}
            snapshot = KVSnapshot(tokens=tokens, keys=keys, values=values)
        snapshot.validate()
        if query_samples:
            # attach to the snapshot so spill/reload round-trips the samples
            snapshot.query_samples = {
                layer: np.asarray(q, dtype=np.float32) for layer, q in query_samples.items()
            }

        context_id = context_id or self._next_context_id()
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        self._register_context(
            context,
            build_fine_indexes=build_fine_indexes,
            build_coarse_indexes=build_coarse_indexes,
            lazy_fine_indexes=lazy_fine_indexes,
            overwrite=False,
        )
        return context

    # ------------------------------------------------------------------
    # Table 2: DB.store(session)
    # ------------------------------------------------------------------
    def store(
        self,
        session: Session,
        tokens: list[int] | None = None,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
        lazy_fine_indexes: bool | None = None,
    ) -> StoredContext:
        """Persist all of a session's state as a new reusable context.

        This is where late materialization happens: the locally-cached KV the
        session accumulated is merged with the reused prefix and a fresh set
        of physical indexes is built over the merged keys.

        ``tokens`` is the full token sequence the session now represents
        (reused prefix + prefilled suffix + generated tokens); when omitted,
        the reused context's tokens are extended with placeholder ids so the
        KV snapshot stays consistent.
        """
        num_layers = session.num_layers
        keys: dict[int, np.ndarray] = {}
        values: dict[int, np.ndarray] = {}
        for layer in range(num_layers):
            layer_keys, layer_values = session.materialized_kv(layer)
            keys[layer] = np.ascontiguousarray(layer_keys)
            values[layer] = np.ascontiguousarray(layer_values)
        total_tokens = keys[0].shape[1] if keys else 0
        if tokens is None:
            prefix_tokens = session.context.tokens[: session.reused_prefix_length] if session.context else []
            padding = [self.tokenizer.pad_id] * (total_tokens - len(prefix_tokens))
            tokens = list(prefix_tokens) + padding
        samples = self._merged_query_samples(session)
        snapshot = KVSnapshot(
            tokens=list(tokens), keys=keys, values=values, query_samples=samples
        )
        snapshot.validate()

        context_id = context_id or self._next_context_id()
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        self._register_context(
            context,
            build_fine_indexes=build_fine_indexes,
            build_coarse_indexes=build_coarse_indexes,
            lazy_fine_indexes=lazy_fine_indexes,
            overwrite=True,
        )
        return context

    def _merged_query_samples(self, session: Session) -> dict[int, np.ndarray]:
        """Query samples covering everything a stored session represents.

        A connected session only captured queries for its *locally* computed
        tokens; the reused prefix's queries live on the stored context it was
        connected to.  Concatenating both keeps the sample representative of
        the full transcript when a chat turn re-stores the grown context.
        """
        local = {layer: s for layer, s in session.query_samples.items() if s.size}
        prefix: dict[int, np.ndarray] = {}
        if session.context is not None and session.reused_prefix_length > 0:
            prefix = {
                layer: s for layer, s in session.context.query_samples.items()
                if s is not None and s.size
            }
        merged: dict[int, np.ndarray] = {}
        for layer in set(prefix) | set(local):
            parts = [
                np.asarray(s, dtype=np.float32)
                for s in (prefix.get(layer), local.get(layer))
                if s is not None and s.size
            ]
            if len(parts) == 2 and (
                parts[0].shape[0] != parts[1].shape[0]
                or parts[0].shape[2] != parts[1].shape[2]
            ):
                parts = parts[1:]  # incompatible historic sample: keep the fresh one
            merged[layer] = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
        return merged

    def _register_context(
        self,
        context: StoredContext,
        build_fine_indexes: bool,
        build_coarse_indexes: bool,
        lazy_fine_indexes: bool | None,
        overwrite: bool,
    ) -> None:
        lazy = self.config.lazy_index_build if lazy_fine_indexes is None else lazy_fine_indexes
        context.wants_fine_indexes = build_fine_indexes
        context.wants_coarse_indexes = build_coarse_indexes
        if build_fine_indexes and not lazy:
            self._build_fine_indexes(context)
        if build_coarse_indexes:
            self._build_coarse_indexes(context)
        self.store_registry.add(context, overwrite=overwrite)
        if build_fine_indexes and lazy:
            self._pending_fine.add(context.context_id)
        self._account_residency(context)

    # ------------------------------------------------------------------
    # convenience: prefill a prompt with a model and import the result
    # ------------------------------------------------------------------
    def prefill_and_import(
        self,
        model: TransformerModel,
        prompts: str | list[int] | np.ndarray,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
        lazy_fine_indexes: bool | None = None,
    ) -> StoredContext:
        """Run a full prefill of ``prompts`` and import the resulting context.

        Captures the per-layer query vectors of the prefill pass so RoarGraph
        construction can use real (OOD) query samples.
        """
        tokens = self._tokenize(prompts)
        cache = DynamicCache()
        _, activations = model.forward(np.asarray(tokens, dtype=np.int64), cache, capture_activations=True)
        query_samples = {act.layer: act.queries for act in activations}
        return self.import_context(
            tokens,
            cache,
            query_samples=query_samples,
            context_id=context_id,
            build_fine_indexes=build_fine_indexes,
            build_coarse_indexes=build_coarse_indexes,
            lazy_fine_indexes=lazy_fine_indexes,
        )

    # ------------------------------------------------------------------
    # sharding: range-partition a context into per-shard stored contexts
    # ------------------------------------------------------------------
    def shard_context(
        self,
        context_id: str,
        num_shards: int | None = None,
        shard_token_range: int | None = None,
        plan: ShardPlan | None = None,
    ) -> tuple[ShardPlan, list[StoredContext]]:
        """Range-partition a stored context into per-shard stored contexts.

        Each shard is a full citizen of the store under its own id
        (``<context_id>--shardNNN``): a KV snapshot holding only its token
        range, plus fine/coarse indexes **built over that range alone** (the
        original context's index policy is inherited, builds are eager —
        shards exist to be fanned out to, not lazily warmed).  Shards are not
        prefix-matchable: they hold mid-document slices and are addressed by
        id through a shard catalog, never matched against prompts.  In a
        durable store every shard persists under its own keys plus a manifest
        row, so any worker over the shared backend can cold-load it.

        Sizing: an explicit ``plan`` wins; else ``num_shards`` /
        ``shard_token_range`` (argument, falling back to the config knobs).
        Boundaries are aligned down to ``coarse_block_size`` whenever coarse
        indexes are built, keeping shard-local blocks identical to the
        full-context blocks so the router's cross-shard block merge is exact.
        """
        context = self.touch_context(context_id)
        build_fine = context.wants_fine_indexes
        build_coarse = context.wants_coarse_indexes
        if plan is None:
            align = self.config.coarse_block_size if build_coarse else 1
            token_range = (
                shard_token_range if shard_token_range is not None else self.config.shard_token_range
            )
            if num_shards is not None:
                plan = ShardPlan.even(context.num_tokens, num_shards, align=align)
            elif token_range is not None:
                plan = ShardPlan.by_token_range(context.num_tokens, token_range, align=align)
            else:
                plan = ShardPlan.even(context.num_tokens, self.config.num_shards, align=align)
        elif plan.num_tokens != context.num_tokens:
            raise ContextLoadError(
                f"shard plan covers {plan.num_tokens} tokens but context "
                f"{context_id!r} has {context.num_tokens}"
            )
        shards: list[StoredContext] = []
        for rng in plan.ranges:
            shard = StoredContext(
                context_id=shard_context_id(context_id, rng.shard_id),
                snapshot=slice_snapshot(context.snapshot, rng, plan),
                prefix_matchable=False,
            )
            self._register_context(
                shard,
                build_fine_indexes=build_fine,
                build_coarse_indexes=build_coarse,
                lazy_fine_indexes=False,
                overwrite=True,
            )
            shards.append(shard)
        return plan, shards

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def _build_fine_indexes(self, context: StoredContext, builder: ContextIndexBuilder | None = None) -> None:
        builder = builder or self._builder
        keys_per_layer = context.snapshot.keys
        queries_per_layer: dict[int, np.ndarray] = {}
        for layer, keys in keys_per_layer.items():
            sample = context.query_samples.get(layer)
            if sample is None or sample.size == 0:
                # fall back to the keys themselves (loses the OOD benefit but
                # keeps the index functional)
                sample = keys
            queries_per_layer[layer] = np.asarray(sample, dtype=np.float32)
        layer_indexes, _ = builder.build_context(keys_per_layer, queries_per_layer)
        context.fine_indexes = layer_indexes

    def _build_coarse_indexes(self, context: StoredContext) -> None:
        coarse: dict[int, list[CoarseBlockIndex]] = {}
        for layer, keys in context.snapshot.keys.items():
            per_head: list[CoarseBlockIndex] = []
            for kv_head in range(keys.shape[0]):
                index = CoarseBlockIndex(block_size=self.config.coarse_block_size)
                index.build(keys[kv_head])
                per_head.append(index)
            coarse[layer] = per_head
        context.coarse_indexes = coarse

    def _ensure_fine_indexes(self, context: StoredContext) -> bool:
        """Build a context's deferred fine indexes; True when indexes exist."""
        context_id = context.context_id
        if context_id not in self._pending_fine:
            return context.has_fine_indexes
        if not context.is_resident:
            return False
        self._build_fine_indexes(context)
        self._pending_fine.discard(context_id)
        # refresh the residency mirror with the new index footprint
        self._mirror_block(self._index_block_key(context_id), context.index_bytes, BlockType.INDEX)
        # a durable store re-persists so the deferred build still reloads as
        # a deserialize, not another rebuild
        if self.store_registry.durable:
            self.store_registry.persist_indexes(context_id)
        return True

    def build_pending(self, limit: int | None = None) -> int:
        """Build deferred fine indexes for up to ``limit`` resident contexts.

        The scheduler drains these between steps; spilled contexts are left
        pending (reloading them just to index would defeat the budget).
        Returns the number of contexts whose indexes were built.
        """
        built = 0
        for context_id in sorted(self._pending_fine):
            if limit is not None and built >= limit:
                break
            if context_id not in self.store_registry:
                # removed since it was queued; drop the stale entry
                self._pending_fine.discard(context_id)
                continue
            context = self.store_registry.get(context_id)
            if not context.is_resident:
                continue
            if self._ensure_fine_indexes(context):
                built += 1
        return built

    def rebuild_indexes(self, context_id: str, index_build: IndexBuildConfig | None = None) -> LayerIndexes | None:
        """Rebuild a context's fine indexes (e.g. after changing build options).

        A one-off ``index_build`` applies only to this rebuild; the DB's
        configured builder is untouched.
        """
        context = self.touch_context(context_id)
        builder = self._builder if index_build is None else ContextIndexBuilder(index_build)
        self._build_fine_indexes(context, builder=builder)
        self._pending_fine.discard(context_id)
        # the rebuild changed the index footprint; keep the mirror exact
        self._mirror_block(self._index_block_key(context_id), context.index_bytes, BlockType.INDEX)
        if self.store_registry.durable:
            self.store_registry.persist_indexes(context_id)
        return next(iter(context.fine_indexes.values()), None)

    # ------------------------------------------------------------------
    # portable context bundles (export / import)
    # ------------------------------------------------------------------
    def export_context(self, context_id: str, dest_dir: str | Path) -> Path:
        """Export one context as a portable bundle directory.

        The bundle holds the context's snapshot, its serialized fine/coarse
        indexes (deferred builds are completed first so the bundle is whole),
        and a ``bundle.json`` catalog row — enough for
        :meth:`import_context_bundle` on another DB to serve the context
        without re-prefilling or re-indexing.
        """
        context = self.touch_context(context_id)
        if context.wants_fine_indexes:
            self._ensure_fine_indexes(context)
        dest = Path(dest_dir)
        bundle = FilesystemBackend(dest)
        snapshot_key = f"{context_id}.npz"
        bundle.write_bytes(snapshot_key, snapshot_to_bytes(context.snapshot))
        index_key = None
        if context.fine_indexes or context.coarse_indexes:
            index_key = f"{context_id}.indexes.npz"
            bundle.write_bytes(
                index_key,
                serialize_context_indexes(
                    context.fine_indexes, context.coarse_indexes, context.query_samples
                ),
            )
        entry = ManifestEntry(
            context_id=context_id,
            tokens=list(context.tokens),
            num_layers=context.num_layers,
            kv_bytes=context.kv_bytes,
            snapshot_key=snapshot_key,
            index_key=index_key,
            index_bytes=bundle.size_bytes(index_key) if index_key else 0,
            wants_fine_indexes=context.wants_fine_indexes,
            wants_coarse_indexes=context.wants_coarse_indexes,
            metadata=dict(context.snapshot.metadata),
        )
        bundle.write_bytes(
            "bundle.json",
            json.dumps(
                {"format_version": BUNDLE_FORMAT_VERSION, "context": entry.to_json()},
                indent=1,
            ).encode("utf-8"),
        )
        return dest

    def import_context_bundle(
        self,
        src_dir: str | Path,
        context_id: str | None = None,
        overwrite: bool = False,
    ) -> StoredContext:
        """Import a bundle exported by :meth:`export_context`.

        The snapshot and indexes are deserialized as-is (retrieval over the
        imported context is bit-identical to the exporter's); missing index
        classes fall back to the usual rebuild paths.  ``context_id``
        overrides the bundled id, e.g. to avoid a collision.
        """
        bundle = FilesystemBackend(src_dir)
        try:
            payload = json.loads(bundle.read_bytes("bundle.json").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ContextLoadError(f"corrupted bundle.json in {src_dir}: {exc}") from exc
        version = payload.get("format_version")
        if version != BUNDLE_FORMAT_VERSION:
            raise ContextLoadError(
                f"bundle format version {version!r} is not supported "
                f"(this build reads version {BUNDLE_FORMAT_VERSION})"
            )
        entry = ManifestEntry.from_json(payload.get("context", {}))
        snapshot = snapshot_from_bytes(
            bundle.read_bytes(entry.snapshot_key), source=f"{src_dir}/{entry.snapshot_key}"
        )
        context = StoredContext(
            context_id=context_id or entry.context_id,
            snapshot=snapshot,
            wants_fine_indexes=entry.wants_fine_indexes,
            wants_coarse_indexes=entry.wants_coarse_indexes,
        )
        if entry.index_key and bundle.exists(entry.index_key):
            fine, coarse, samples = deserialize_context_indexes(
                bundle.read_bytes(entry.index_key)
            )
            if entry.wants_fine_indexes:
                context.fine_indexes = fine
            if entry.wants_coarse_indexes:
                context.coarse_indexes = coarse
            if samples and not context.query_samples:
                context.query_samples = samples
        if context.wants_coarse_indexes and not context.coarse_indexes:
            self._build_coarse_indexes(context)
        self.store_registry.add(context, overwrite=overwrite)
        if context.wants_fine_indexes and not context.has_fine_indexes:
            self._pending_fine.add(context.context_id)
        self._account_residency(context)
        return context
