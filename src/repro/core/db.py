"""The ``DB`` abstraction: the entry point of AlayaDB (Table 2 of the paper).

A ``DB`` owns every stored context (prompts, KV caches, vector indexes) the
way a relational DB instance owns schemas and tables.  Applications interact
with it through three calls:

* ``create_session(prompts)`` — match the prompt against the stored contexts,
  reuse the longest common prefix, and return a :class:`Session` plus the
  *truncated* (non-reused) prompt suffix that still needs prefill;
* ``import_context(...)`` — register an already-computed context (prompt +
  KV cache) for future reuse, building its vector indexes;
* ``store(session)`` — persist everything a session accumulated (reused
  prefix + locally generated KV) as a new reusable context; this is the late
  materialization point where the local KV finally enters a physical index.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import numpy as np

from ..index.builder import ContextIndexBuilder, IndexBuildConfig, LayerIndexes
from ..index.coarse import CoarseBlockIndex
from ..kvcache.cache import DynamicCache
from ..kvcache.serialization import KVSnapshot
from ..llm.model import TransformerModel
from ..llm.tokenizer import ByteTokenizer
from .config import AlayaDBConfig
from .context_store import ContextStore, StoredContext
from .session import Session

__all__ = ["DB"]


class DB:
    """The AlayaDB database object."""

    def __init__(
        self,
        config: AlayaDBConfig | None = None,
        tokenizer: ByteTokenizer | None = None,
        storage_dir: str | Path | None = None,
    ):
        self.config = config or AlayaDBConfig()
        self.tokenizer = tokenizer or ByteTokenizer()
        self.store_registry = ContextStore(storage_dir=storage_dir)
        self._builder = ContextIndexBuilder(self.config.index_build)
        self._context_counter = itertools.count()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tokenize(self, prompts: str | list[int] | np.ndarray) -> list[int]:
        if isinstance(prompts, str):
            return self.tokenizer.encode(prompts)
        return [int(t) for t in np.asarray(prompts).reshape(-1)]

    def _next_context_id(self) -> str:
        return f"ctx-{next(self._context_counter):04d}"

    @property
    def num_contexts(self) -> int:
        return len(self.store_registry)

    def get_context(self, context_id: str) -> StoredContext:
        return self.store_registry.get(context_id)

    # ------------------------------------------------------------------
    # Table 2: DB.create_session(prompts) -> Session, prompts
    # ------------------------------------------------------------------
    def create_session(
        self,
        prompts: str | list[int] | np.ndarray,
        gpu_memory_budget_bytes: int | None = None,
    ) -> tuple[Session, list[int]]:
        """Create a session for ``prompts``; returns it plus the truncated prompt.

        The longest common prefix between the prompt and any stored context is
        reused through the session; only the remaining suffix is returned and
        must be prefilled by the caller's model.
        """
        tokens = self._tokenize(prompts)
        match = self.store_registry.find_longest_prefix(tokens)
        useful = match.is_hit and match.prefix_length >= self.config.min_reuse_tokens
        context = match.context if useful else None
        reused = match.prefix_length if useful else 0
        session = Session(
            config=self.config,
            context=context,
            reused_prefix_length=reused,
            num_layers=context.num_layers if context is not None else None,
            gpu_memory_budget_bytes=gpu_memory_budget_bytes,
        )
        truncated = tokens[reused:]
        return session, truncated

    # ------------------------------------------------------------------
    # Table 2: DB.import(prompts, kv_cache)
    # ------------------------------------------------------------------
    def import_context(
        self,
        prompts: str | list[int] | np.ndarray,
        kv_cache: DynamicCache | KVSnapshot,
        query_samples: dict[int, np.ndarray] | None = None,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
    ) -> StoredContext:
        """Import an already-computed context (prompt + KV cache) for reuse."""
        tokens = self._tokenize(prompts)
        if isinstance(kv_cache, KVSnapshot):
            snapshot = kv_cache
        else:
            keys = {layer: kv_cache.keys(layer).copy() for layer in range(kv_cache.num_layers)}
            values = {layer: kv_cache.values(layer).copy() for layer in range(kv_cache.num_layers)}
            snapshot = KVSnapshot(tokens=tokens, keys=keys, values=values)
        snapshot.validate()

        context_id = context_id or self._next_context_id()
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        if query_samples:
            context.query_samples = {layer: np.asarray(q, dtype=np.float32) for layer, q in query_samples.items()}
        if build_fine_indexes:
            self._build_fine_indexes(context)
        if build_coarse_indexes:
            self._build_coarse_indexes(context)
        self.store_registry.add(context)
        return context

    # ------------------------------------------------------------------
    # Table 2: DB.store(session)
    # ------------------------------------------------------------------
    def store(
        self,
        session: Session,
        tokens: list[int] | None = None,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
    ) -> StoredContext:
        """Persist all of a session's state as a new reusable context.

        This is where late materialization happens: the locally-cached KV the
        session accumulated is merged with the reused prefix and a fresh set
        of physical indexes is built over the merged keys.

        ``tokens`` is the full token sequence the session now represents
        (reused prefix + prefilled suffix + generated tokens); when omitted,
        the reused context's tokens are extended with placeholder ids so the
        KV snapshot stays consistent.
        """
        num_layers = session.num_layers
        keys: dict[int, np.ndarray] = {}
        values: dict[int, np.ndarray] = {}
        for layer in range(num_layers):
            layer_keys, layer_values = session._materialized_kv(layer)
            keys[layer] = np.ascontiguousarray(layer_keys)
            values[layer] = np.ascontiguousarray(layer_values)
        total_tokens = keys[0].shape[1] if keys else 0
        if tokens is None:
            prefix_tokens = session.context.tokens[: session.reused_prefix_length] if session.context else []
            padding = [self.tokenizer.pad_id] * (total_tokens - len(prefix_tokens))
            tokens = list(prefix_tokens) + padding
        snapshot = KVSnapshot(tokens=list(tokens), keys=keys, values=values)
        snapshot.validate()

        context_id = context_id or self._next_context_id()
        context = StoredContext(context_id=context_id, snapshot=snapshot)
        samples = session.query_samples
        if samples:
            context.query_samples = samples
        if build_fine_indexes:
            self._build_fine_indexes(context)
        if build_coarse_indexes:
            self._build_coarse_indexes(context)
        self.store_registry.add(context, overwrite=True)
        return context

    # ------------------------------------------------------------------
    # convenience: prefill a prompt with a model and import the result
    # ------------------------------------------------------------------
    def prefill_and_import(
        self,
        model: TransformerModel,
        prompts: str | list[int] | np.ndarray,
        context_id: str | None = None,
        build_fine_indexes: bool = True,
        build_coarse_indexes: bool = True,
    ) -> StoredContext:
        """Run a full prefill of ``prompts`` and import the resulting context.

        Captures the per-layer query vectors of the prefill pass so RoarGraph
        construction can use real (OOD) query samples.
        """
        tokens = self._tokenize(prompts)
        cache = DynamicCache()
        _, activations = model.forward(np.asarray(tokens, dtype=np.int64), cache, capture_activations=True)
        query_samples = {act.layer: act.queries for act in activations}
        return self.import_context(
            tokens,
            cache,
            query_samples=query_samples,
            context_id=context_id,
            build_fine_indexes=build_fine_indexes,
            build_coarse_indexes=build_coarse_indexes,
        )

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def _build_fine_indexes(self, context: StoredContext) -> None:
        keys_per_layer = context.snapshot.keys
        queries_per_layer: dict[int, np.ndarray] = {}
        for layer, keys in keys_per_layer.items():
            sample = context.query_samples.get(layer)
            if sample is None or sample.size == 0:
                # fall back to the keys themselves (loses the OOD benefit but
                # keeps the index functional)
                sample = keys
            queries_per_layer[layer] = np.asarray(sample, dtype=np.float32)
        layer_indexes, _ = self._builder.build_context(keys_per_layer, queries_per_layer)
        context.fine_indexes = layer_indexes

    def _build_coarse_indexes(self, context: StoredContext) -> None:
        coarse: dict[int, list[CoarseBlockIndex]] = {}
        for layer, keys in context.snapshot.keys.items():
            per_head: list[CoarseBlockIndex] = []
            for kv_head in range(keys.shape[0]):
                index = CoarseBlockIndex(block_size=self.config.coarse_block_size)
                index.build(keys[kv_head])
                per_head.append(index)
            coarse[layer] = per_head
        context.coarse_indexes = coarse

    def rebuild_indexes(self, context_id: str, index_build: IndexBuildConfig | None = None) -> LayerIndexes | None:
        """Rebuild a context's fine indexes (e.g. after changing build options)."""
        context = self.store_registry.get(context_id)
        if index_build is not None:
            self._builder = ContextIndexBuilder(index_build)
        self._build_fine_indexes(context)
        return next(iter(context.fine_indexes.values()), None)
