"""Request objects flowing through the serving scheduler."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..simulator.slo import SLO

__all__ = ["RequestState", "Request", "InFlightRequest"]


class RequestState:
    """Lifecycle of a request: queued → running → finished (or rejected/failed/
    cancelled), possibly bouncing through preempted ⇄ running along the way."""

    QUEUED = "queued"
    DEFERRED = "deferred"
    """Still queued, but at least one admission attempt found no free budget."""
    RUNNING = "running"
    PREEMPTED = "preempted"
    """Paused mid-flight to free a slot for an SLO-critical arrival; resumes
    when a slot (and its memory reservation) frees up again."""
    FINISHED = "finished"
    REJECTED = "rejected"
    FAILED = "failed"
    """Session setup raised; the error is recorded on ``Request.error``."""
    CANCELLED = "cancelled"
    """The client cancelled the request (queued, in flight, or preempted);
    its admission reservation was released and its session torn down."""

    TERMINAL = frozenset({FINISHED, REJECTED, FAILED, CANCELLED})
    """States a request never leaves; see :meth:`Request.is_terminal`."""


@dataclass
class Request:
    """One queued generation request."""

    request_id: int
    prompt_tokens: list[int]
    max_new_tokens: int = 16
    priority: int = 0
    """Higher values are scheduled first by the SLO-aware policy."""
    slo: SLO | None = None
    """Per-request latency class; its TTFT deadline drives SLO-aware order."""
    gpu_memory_budget_bytes: int | None = None
    """Per-session budget forwarded to the optimizer (not admission control)."""
    prefill_chunk_tokens: int | None = None
    """Per-request override of the backend's prefill chunk size; ``None``
    uses the configured default."""
    store_context_id: str | None = None
    """When set, the backend persists the finished session's accumulated
    context (prompt + generated KV) under this id for cross-turn reuse."""
    tenant: str = "default"
    """The tenant this request is billed to; drives weighted fair queuing,
    per-tenant quotas, and backpressure when a ``TenantGovernor`` is active."""
    submitted_at: float = 0.0
    arrival_order: int = 0
    state: str = RequestState.QUEUED
    error: str | None = None
    """Why the request FAILED (``begin_request`` raised); ``None`` otherwise."""

    def __post_init__(self) -> None:
        if not self.prompt_tokens:
            raise ValueError(
                "prompt_tokens must not be empty: an empty prompt has nothing "
                "to prefill or match against the context store"
            )
        if self.max_new_tokens < 0:
            raise ValueError(
                f"max_new_tokens must be non-negative, got {self.max_new_tokens}"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens <= 0:
            raise ValueError(
                f"prefill_chunk_tokens must be positive when set, "
                f"got {self.prefill_chunk_tokens}"
            )

    @property
    def num_prompt_tokens(self) -> int:
        return len(self.prompt_tokens)

    @property
    def is_terminal(self) -> bool:
        """True once the request reached a state it can never leave."""
        return self.state in RequestState.TERMINAL

    def waited_seconds(self, now: float) -> float:
        return max(0.0, now - self.submitted_at)

    def ttft_slack(self, now: float) -> float:
        """Seconds of TTFT slack left; ``+inf`` without an SLO deadline."""
        if self.slo is None:
            return math.inf
        return self.slo.ttft_slack(self.waited_seconds(now))


@dataclass
class InFlightRequest:
    """Execution state of an admitted request, advanced one step at a time.

    ``session`` and ``rng`` are opaque to the scheduler — the backend owns
    their types (an AlayaDB ``Session`` and a numpy generator in the
    production service).
    """

    request: Request
    session: Any
    pending_tokens: list[int]
    """Prompt suffix still to prefill (shrinks chunk by chunk)."""
    truncated_tokens: list[int] = field(default_factory=list)
    """The original non-reused prompt suffix (for result reporting)."""
    reserved_bytes: int = 0
    """Bytes currently reserved with admission control; while preempted this
    drops to the session's still-resident footprint (see
    ``SchedulerBackend.preempted_request_bytes``), not necessarily 0."""
    estimated_bytes: int = 0
    """The original admission estimate, re-reserved when a preempted request
    resumes."""
    generated: list[int] = field(default_factory=list)
    decode_seconds: list[float] = field(default_factory=list)
    prefill_seconds: float = 0.0
    """Compute-only prefill time (excludes time parked between chunks)."""
    queue_seconds: float = 0.0
    admitted_at: float = 0.0
    """``time.monotonic()`` when the request was admitted; wall-clock TTFT is
    measured from here."""
    first_token_seconds: float | None = None
    """Wall-clock admission → first sampled token (includes time parked
    between prefill chunks, unlike ``prefill_seconds``)."""
    preemptions: int = 0
    rng: Any = None
    finished_by_eos: bool = False

    @property
    def needs_prefill(self) -> bool:
        return bool(self.pending_tokens)

    @property
    def num_generated(self) -> int:
        return len(self.generated)

    @property
    def is_finished(self) -> bool:
        if self.needs_prefill:
            return False
        return self.finished_by_eos or self.num_generated >= self.request.max_new_tokens
