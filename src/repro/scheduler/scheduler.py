"""The step-driven request scheduler.

Each :meth:`RequestScheduler.step` (1) admits queued requests while slots and
the memory budget allow, (2) gives every in-flight request one unit of work —
a prefill chunk or one decode step — so long prefills interleave with other
requests' decodes, (3) retires finished requests and releases their admission
reservations, and (4) optionally drains one deferred index build.

The scheduler knows nothing about models or databases: a
:class:`SchedulerBackend` supplies the actual work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

from .admission import AdmissionController, AdmissionDecision
from .policy import FCFSPolicy, SchedulerPolicy
from .request import InFlightRequest, Request, RequestState

__all__ = ["SchedulerBackend", "SchedulerStats", "RequestScheduler"]


class SchedulerBackend(Protocol):
    """What the scheduler needs from the serving layer."""

    def estimate_request_bytes(self, request: Request) -> int:
        """Estimated GPU-resident bytes the request will pin while in flight."""

    def begin_request(self, request: Request) -> InFlightRequest:
        """Create the session / execution state for an admitted request."""

    def prefill_chunk(self, inflight: InFlightRequest) -> None:
        """Prefill the next chunk of the pending prompt suffix."""

    def decode_step(self, inflight: InFlightRequest) -> None:
        """Generate one token."""

    def finish_request(self, inflight: InFlightRequest) -> None:
        """Record results and release per-request resources."""

    def reject_request(self, request: Request) -> None:
        """Note a request admission control rejected outright."""

    def between_steps(self) -> None:
        """Optional slack work (deferred index builds) between steps."""


@dataclass
class SchedulerStats:
    """Counters describing scheduler activity so far."""

    steps: int = 0
    prefill_chunks: int = 0
    decode_steps: int = 0
    admitted: int = 0
    rejected: int = 0
    deferrals: int = 0
    """Unique requests that waited on the memory budget at least once."""
    completed: int = 0


class RequestScheduler:
    """Queue + admission control + interleaved prefill/decode step loop."""

    def __init__(
        self,
        backend: SchedulerBackend,
        policy: SchedulerPolicy | None = None,
        admission: AdmissionController | None = None,
        max_inflight: int = 8,
        drain_index_builds: bool = False,
    ):
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.backend = backend
        self.policy = policy or FCFSPolicy()
        self.admission = admission or AdmissionController()
        self.max_inflight = max_inflight
        self.drain_index_builds = drain_index_builds
        self._queue: list[Request] = []
        self._inflight: list[InFlightRequest] = []
        self._arrival_counter = 0
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def num_inflight(self) -> int:
        return len(self._inflight)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._inflight)

    def queued_requests(self) -> list[Request]:
        return list(self._queue)

    def inflight_requests(self) -> list[InFlightRequest]:
        return list(self._inflight)

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue a request; it runs once admission control lets it in."""
        request.submitted_at = time.monotonic()
        request.arrival_order = self._arrival_counter
        self._arrival_counter += 1
        request.state = RequestState.QUEUED
        self._queue.append(request)

    # ------------------------------------------------------------------
    # the step loop
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        while self._queue and len(self._inflight) < self.max_inflight:
            now = time.monotonic()
            index = self.policy.select(self._queue, now)
            request = self._queue[index]
            estimate = self.backend.estimate_request_bytes(request)
            decision = self.admission.try_admit(estimate)
            if decision == AdmissionDecision.REJECT:
                self._queue.pop(index)
                request.state = RequestState.REJECTED
                self.stats.rejected += 1
                self.backend.reject_request(request)
                continue
            if decision == AdmissionDecision.DEFER:
                # not enough free budget until an in-flight request finishes;
                # count each request's first deferral only (re-tried every step)
                if request.state != RequestState.DEFERRED:
                    request.state = RequestState.DEFERRED
                    self.stats.deferrals += 1
                break
            self._queue.pop(index)
            try:
                inflight = self.backend.begin_request(request)
            except Exception:
                # the reservation must not leak when session setup fails
                # (e.g. a spilled context's snapshot is gone from disk)
                self.admission.release(estimate)
                request.state = RequestState.REJECTED
                self.stats.rejected += 1
                self.backend.reject_request(request)
                raise
            inflight.reserved_bytes = estimate
            inflight.queue_seconds = request.waited_seconds(now)
            request.state = RequestState.RUNNING
            self.stats.admitted += 1
            self._inflight.append(inflight)

    def step(self) -> list[InFlightRequest]:
        """Run one scheduling round; returns the requests finished by it."""
        self.stats.steps += 1
        self._admit()
        finished: list[InFlightRequest] = []
        for inflight in list(self._inflight):
            if inflight.needs_prefill:
                self.backend.prefill_chunk(inflight)
                self.stats.prefill_chunks += 1
            else:
                self.backend.decode_step(inflight)
                self.stats.decode_steps += 1
            if inflight.is_finished:
                finished.append(inflight)
        for inflight in finished:
            self._inflight.remove(inflight)
            inflight.request.state = RequestState.FINISHED
            self.admission.release(inflight.reserved_bytes)
            self.stats.completed += 1
            self.backend.finish_request(inflight)
        if self.drain_index_builds:
            self.backend.between_steps()
        return finished

    def drain(self, max_steps: int | None = None) -> list[InFlightRequest]:
        """Step until the queue and in-flight set are empty (or ``max_steps``)."""
        finished: list[InFlightRequest] = []
        steps = 0
        while self.has_work:
            finished.extend(self.step())
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return finished
