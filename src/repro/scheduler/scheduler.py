"""The step-driven request scheduler.

Each :meth:`RequestScheduler.step` (1) preempts an in-flight request when an
SLO-critical arrival is starving and every slot is taken, (2) admits queued
requests while slots and the memory budget allow, (3) resumes preempted
requests into leftover slots, (4) gives every in-flight request one unit of
work — a prefill chunk or one decode step, with all decode-ready requests
batched into a single forward pass when the backend supports it — and
(5) retires finished requests, releasing their admission reservations.

The scheduler knows nothing about models or databases: a
:class:`SchedulerBackend` supplies the actual work.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Protocol, Sequence

from .admission import AdmissionController, AdmissionDecision
from .policy import FCFSPolicy, SchedulerPolicy
from .request import InFlightRequest, Request, RequestState
from .tenancy import TenantGovernor

__all__ = ["SchedulerBackend", "SchedulerStats", "RequestScheduler"]


class SchedulerBackend(Protocol):
    """What the scheduler needs from the serving layer.

    ``decode_batch``, ``fail_request``, ``cancel_request``,
    ``preempt_request`` and ``resume_request`` are optional: the scheduler
    probes for them and falls back to per-request decodes /
    ``reject_request`` / no-ops when absent.
    """

    def estimate_request_bytes(self, request: Request) -> int:
        """Estimated GPU-resident bytes the request will pin while in flight."""

    def begin_request(self, request: Request) -> InFlightRequest:
        """Create the session / execution state for an admitted request."""

    def prefill_chunk(self, inflight: InFlightRequest) -> None:
        """Prefill the next chunk of the pending prompt suffix."""

    def decode_step(self, inflight: InFlightRequest) -> None:
        """Generate one token."""

    def decode_batch(self, inflights: Sequence[InFlightRequest]) -> None:
        """Generate one token for every request in one batched forward pass."""

    def finish_request(self, inflight: InFlightRequest) -> None:
        """Record results and release per-request resources."""

    def cancel_request(self, inflight: InFlightRequest) -> None:
        """A running or preempted request was cancelled; tear down its
        session (its admission reservation is already released)."""

    def reject_request(self, request: Request) -> None:
        """Note a request admission control rejected outright."""

    def fail_request(self, request: Request, error: Exception) -> None:
        """Note a request whose session setup (``begin_request``) raised."""

    def preempted_request_bytes(self, inflight: InFlightRequest) -> int:
        """Bytes a paused request keeps resident (its session's live KV);
        only the rest of its reservation is released on preemption."""

    def preempt_request(self, inflight: InFlightRequest) -> None:
        """A request was paused; its session's pinned state may be spilled."""

    def resume_request(self, inflight: InFlightRequest) -> None:
        """A paused request is back in flight; re-pin / reload its state."""

    def between_steps(self) -> None:
        """Optional slack work (deferred index builds) between steps."""


@dataclass
class SchedulerStats:
    """Counters describing scheduler activity so far."""

    steps: int = 0
    prefill_chunks: int = 0
    decode_steps: int = 0
    batched_decode_calls: int = 0
    """Scheduler rounds that served ≥2 decode-ready requests with one
    ``decode_batch`` forward pass."""
    admitted: int = 0
    rejected: int = 0
    failed: int = 0
    """Requests whose ``begin_request`` raised (state FAILED)."""
    deferrals: int = 0
    """Unique requests that waited on the memory budget at least once."""
    preemptions: int = 0
    resumes: int = 0
    completed: int = 0
    cancelled: int = 0
    """Requests cancelled by the client (queued, in flight, or preempted)."""


class RequestScheduler:
    """Queue + admission control + interleaved prefill/decode step loop."""

    def __init__(
        self,
        backend: SchedulerBackend,
        policy: SchedulerPolicy | None = None,
        admission: AdmissionController | None = None,
        max_inflight: int = 8,
        drain_index_builds: bool = False,
        decode_batching: bool = True,
        preemption: bool = False,
        preemption_slack_seconds: float = 0.5,
        tenants: TenantGovernor | None = None,
    ):
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.backend = backend
        self.policy = policy or FCFSPolicy()
        self.tenants = tenants
        """Optional multi-tenant governor: when set, admission order across
        tenants is deficit round robin (``tenants.select`` wrapping
        ``policy``) and the governor's lifecycle hooks keep per-tenant
        quota/fairness counters."""
        self.admission = admission or AdmissionController()
        self.max_inflight = max_inflight
        self.drain_index_builds = drain_index_builds
        self.decode_batching = decode_batching
        self.preemption = preemption
        self.preemption_slack_seconds = preemption_slack_seconds
        # resolve the optional decode_batch hook once: re-probing getattr in
        # every step hid backend mismatches as a silent per-request fallback
        self._decode_batch = getattr(backend, "decode_batch", None)
        if decode_batching and self._decode_batch is None:
            warnings.warn(
                f"decode_batching is enabled but backend "
                f"{type(backend).__name__} has no decode_batch hook; decode "
                f"steps will run per request",
                RuntimeWarning,
                stacklevel=2,
            )
        self._queue: list[Request] = []
        self._inflight: list[InFlightRequest] = []
        self._preempted: list[InFlightRequest] = []
        self._arrival_counter = 0
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def num_inflight(self) -> int:
        return len(self._inflight)

    @property
    def num_preempted(self) -> int:
        return len(self._preempted)

    @property
    def has_work(self) -> bool:
        return bool(self._queue or self._inflight or self._preempted)

    def queued_requests(self) -> list[Request]:
        return list(self._queue)

    def queued_by_tenant(self) -> dict[str, int]:
        """Live queue depth per tenant (includes deferred requests)."""
        counts: dict[str, int] = {}
        for request in self._queue:
            counts[request.tenant] = counts.get(request.tenant, 0) + 1
        return counts

    def inflight_requests(self) -> list[InFlightRequest]:
        return list(self._inflight)

    def preempted_requests(self) -> list[InFlightRequest]:
        return list(self._preempted)

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Enqueue a request; it runs once admission control lets it in."""
        request.submitted_at = time.monotonic()
        request.arrival_order = self._arrival_counter
        self._arrival_counter += 1
        request.state = RequestState.QUEUED
        self._queue.append(request)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, request_id: int) -> bool:
        """Cancel a request wherever it currently lives.

        * queued (or deferred): it simply leaves the queue;
        * in flight: its admission reservation is released and the backend's
          ``cancel_request`` tears down its session;
        * preempted: likewise — the retained part of its reservation (the
          session footprint kept on the books while paused) is released too.

        Returns ``True`` when a request was cancelled, ``False`` when the id
        is unknown or already terminal (finished / rejected / failed /
        cancelled) — cancelling twice is an idempotent no-op.
        """
        for index, request in enumerate(self._queue):
            if request.request_id == request_id:
                self._queue.pop(index)
                request.state = RequestState.CANCELLED
                self.stats.cancelled += 1
                if self.tenants is not None:
                    self.tenants.on_cancelled_queued(request)
                return True
        for pool in (self._inflight, self._preempted):
            for index, inflight in enumerate(pool):
                if inflight.request.request_id == request_id:
                    pool.pop(index)
                    inflight.request.state = RequestState.CANCELLED
                    self.admission.release(inflight.reserved_bytes)
                    inflight.reserved_bytes = 0
                    self.stats.cancelled += 1
                    if self.tenants is not None:
                        self.tenants.on_cancelled_inflight(inflight)
                    cancel = getattr(self.backend, "cancel_request", None)
                    if cancel is not None:
                        cancel(inflight)
                    return True
        return False

    # ------------------------------------------------------------------
    # the step loop
    # ------------------------------------------------------------------
    def _preempted_retained_bytes(self, inflight: InFlightRequest) -> int:
        """Bytes ``inflight`` would keep resident while paused (its session's
        live KV is not freed by preemption, only its stored context becomes
        spillable), capped at the current reservation."""
        query = getattr(self.backend, "preempted_request_bytes", None)
        if query is None:
            return 0
        return min(max(int(query(inflight)), 0), inflight.reserved_bytes)

    def _preempt_for_critical(self) -> None:
        """Pause one in-flight request when a starving critical arrival needs
        its slot (at most one victim per step, so preemption stays gradual)."""
        if not self.preemption or not self._queue:
            return
        if len(self._inflight) < self.max_inflight:
            return  # a slot is already free; plain admission will handle it
        now = time.monotonic()
        # the beneficiary must be whatever request the policy will admit next
        # (not simply the min-slack one): if the policy would hand the freed
        # slot to someone else — e.g. priority dominates slack under the SLO
        # policy — preempting here would evict a victim per step without ever
        # serving the critical request
        critical = self._queue[self.policy.select(self._queue, now)]
        if critical.ttft_slack(now) > self.preemption_slack_seconds:
            return
        victim_index = self.policy.preemption_victim(
            self._inflight, critical, now, self.preemption_slack_seconds
        )
        if victim_index is None:
            return
        victim = self._inflight[victim_index]
        retained = self._preempted_retained_bytes(victim)
        releasable = victim.reserved_bytes - retained
        if (
            self.admission.budget_bytes is not None
            and self.backend.estimate_request_bytes(critical)
            > self.admission.available_bytes + releasable
        ):
            # pausing this victim cannot free enough budget to admit the
            # critical request; preempting would only thrash (pause, fail to
            # admit, resume — possibly spilling and reloading KV every step)
            return
        self._inflight.pop(victim_index)
        victim.request.state = RequestState.PREEMPTED
        victim.preemptions += 1
        self.admission.release(releasable)
        victim.reserved_bytes = retained
        self._preempted.append(victim)
        self.stats.preemptions += 1
        preempt = getattr(self.backend, "preempt_request", None)
        if preempt is not None:
            preempt(victim)

    def _admit(self) -> None:
        while self._queue and len(self._inflight) < self.max_inflight:
            now = time.monotonic()
            if self.tenants is not None:
                selected = self.tenants.select(self._queue, self.policy, now)
                if selected is None:
                    break  # every backlogged tenant is at its quota/budget
                index = selected
            else:
                index = self.policy.select(self._queue, now)
            request = self._queue[index]
            estimate = self.backend.estimate_request_bytes(request)
            decision = self.admission.try_admit(estimate)
            if decision == AdmissionDecision.REJECT:
                self._queue.pop(index)
                request.state = RequestState.REJECTED
                self.stats.rejected += 1
                if self.tenants is not None:
                    self.tenants.on_rejected(request)
                self.backend.reject_request(request)
                continue
            if decision == AdmissionDecision.DEFER:
                # not enough free budget until an in-flight request finishes;
                # count each request's first deferral only (re-tried every step)
                if request.state != RequestState.DEFERRED:
                    request.state = RequestState.DEFERRED
                    self.stats.deferrals += 1
                    if self.tenants is not None:
                        self.tenants.on_deferred(request)
                break
            self._queue.pop(index)
            try:
                inflight = self.backend.begin_request(request)
            except Exception as exc:
                # session setup failed (e.g. a spilled context's snapshot is
                # gone from disk): release the reservation, record the error
                # on the request, and keep the round going for everyone else
                self.admission.release(estimate)
                request.state = RequestState.FAILED
                request.error = f"{type(exc).__name__}: {exc}"
                self.stats.failed += 1
                if self.tenants is not None:
                    self.tenants.on_failed(request)
                fail = getattr(self.backend, "fail_request", None)
                if fail is not None:
                    fail(request, exc)
                else:
                    self.backend.reject_request(request)
                continue
            inflight.reserved_bytes = estimate
            inflight.estimated_bytes = estimate
            inflight.queue_seconds = request.waited_seconds(now)
            inflight.admitted_at = now
            request.state = RequestState.RUNNING
            self.stats.admitted += 1
            if self.tenants is not None:
                self.tenants.on_admitted(request, estimate)
            self._inflight.append(inflight)

    def _resume_preempted(self) -> None:
        """Move paused requests back in flight while slots and budget allow.

        Runs after :meth:`_admit`, so a critical arrival takes the slot its
        preemption freed before its victim can reclaim it.
        """
        while self._preempted and len(self._inflight) < self.max_inflight:
            inflight = self._preempted[0]
            # re-reserve only what preemption released (the retained resident
            # footprint stayed on the books in reserved_bytes)
            delta = max(inflight.estimated_bytes - inflight.reserved_bytes, 0)
            if not self.admission.try_reserve_more(delta):
                break
            self._preempted.pop(0)
            inflight.reserved_bytes += delta
            inflight.request.state = RequestState.RUNNING
            self._inflight.append(inflight)
            self.stats.resumes += 1
            resume = getattr(self.backend, "resume_request", None)
            if resume is not None:
                resume(inflight)

    def step(self) -> list[InFlightRequest]:
        """Run one scheduling round; returns the requests finished by it."""
        self.stats.steps += 1
        self._preempt_for_critical()
        self._admit()
        self._resume_preempted()
        decode_ready: list[InFlightRequest] = []
        for inflight in list(self._inflight):
            if inflight.needs_prefill:
                self.backend.prefill_chunk(inflight)
                self.stats.prefill_chunks += 1
            else:
                decode_ready.append(inflight)
        if decode_ready:
            batch = self._decode_batch
            if self.decode_batching and len(decode_ready) > 1 and batch is not None:
                batch(decode_ready)
                self.stats.batched_decode_calls += 1
            else:
                for inflight in decode_ready:
                    self.backend.decode_step(inflight)
            self.stats.decode_steps += len(decode_ready)
        finished = [fl for fl in self._inflight if fl.is_finished]
        for inflight in finished:
            self._inflight.remove(inflight)
            inflight.request.state = RequestState.FINISHED
            self.admission.release(inflight.reserved_bytes)
            self.stats.completed += 1
            if self.tenants is not None:
                self.tenants.on_finished(inflight)
            self.backend.finish_request(inflight)
        if self.drain_index_builds:
            self.backend.between_steps()
        return finished

    def drain(self, max_steps: int | None = None) -> list[InFlightRequest]:
        """Step until the queue and in-flight set are empty (or ``max_steps``)."""
        finished: list[InFlightRequest] = []
        steps = 0
        while self.has_work:
            finished.extend(self.step())
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return finished
