"""Request scheduling for concurrent serving (Section 8, Model-as-a-Service).

The scheduler turns the one-request-at-a-time serving loop into a
step-driven, memory-governed pipeline:

* :class:`~repro.scheduler.request.Request` — a queued generation request
  with priority and (optional) SLO class;
* :class:`~repro.scheduler.policy.SchedulerPolicy` — the admission order
  (FCFS or SLO-aware least-slack-first);
* :class:`~repro.scheduler.admission.AdmissionController` — global
  GPU-memory admission control across all in-flight requests;
* :class:`~repro.scheduler.tenancy.TenantGovernor` — multi-tenant weighted
  fairness (deficit round robin across tenants, wrapping the FCFS/SLO
  intra-tenant order), per-tenant in-flight/byte quotas, and queue-depth
  backpressure (the HTTP 429 path);
* :class:`~repro.scheduler.scheduler.RequestScheduler` — the step loop that
  interleaves chunked prefill and decode across in-flight sessions, batching
  all decode-ready requests into one shared forward pass (continuous
  batching) and preempting slack-rich in-flight requests for SLO-critical
  arrivals under the ``slo`` policy.

The package is deliberately independent of :mod:`repro.core`: it drives any
backend implementing the :class:`~repro.scheduler.scheduler.SchedulerBackend`
protocol (``InferenceService`` is the production one).
"""

from .admission import AdmissionController, AdmissionDecision, AdmissionStats
from .policy import FCFSPolicy, SchedulerPolicy, SLOAwarePolicy, make_policy
from .request import InFlightRequest, Request, RequestState
from .scheduler import RequestScheduler, SchedulerBackend, SchedulerStats
from .tenancy import DEFAULT_TENANT, TenantGovernor, TenantSpec, TenantStats

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "DEFAULT_TENANT",
    "FCFSPolicy",
    "InFlightRequest",
    "Request",
    "RequestScheduler",
    "RequestState",
    "SchedulerBackend",
    "SchedulerPolicy",
    "SchedulerStats",
    "SLOAwarePolicy",
    "TenantGovernor",
    "TenantSpec",
    "TenantStats",
    "make_policy",
]
