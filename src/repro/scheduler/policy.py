"""Admission-order and preemption policies for the request scheduler."""

from __future__ import annotations

import abc
from typing import Sequence

from .request import InFlightRequest, Request

__all__ = ["SchedulerPolicy", "FCFSPolicy", "SLOAwarePolicy", "make_policy"]


class SchedulerPolicy(abc.ABC):
    """Chooses which queued request to consider for admission next."""

    name = "base"

    @abc.abstractmethod
    def select(self, queue: Sequence[Request], now: float) -> int:
        """Index into ``queue`` of the request to try admitting next."""

    def preemption_victim(
        self,
        inflights: Sequence[InFlightRequest],
        critical: Request,
        now: float,
        slack_threshold: float,
    ) -> int | None:
        """Index of the in-flight request to pause for ``critical``, or None.

        The base policy never preempts; deadline-aware policies override this.
        """
        return None


class FCFSPolicy(SchedulerPolicy):
    """First come, first served: strict arrival order."""

    name = "fcfs"

    def select(self, queue: Sequence[Request], now: float) -> int:
        return 0


class SLOAwarePolicy(SchedulerPolicy):
    """Least TTFT slack first, with priority and arrival-order tiebreaks.

    A request whose SLO deadline is about to pass (small or negative slack)
    jumps ahead of requests with loose or absent deadlines; explicit
    ``priority`` dominates slack so operators can force ordering.
    """

    name = "slo"

    def __init__(self, default_ttft_seconds: float = 60.0):
        self.default_ttft_seconds = default_ttft_seconds

    def select(self, queue: Sequence[Request], now: float) -> int:
        def urgency(indexed: tuple[int, Request]) -> tuple[float, float, int]:
            _, request = indexed
            slack = request.ttft_slack(now)
            if slack == float("inf"):
                slack = self.default_ttft_seconds - request.waited_seconds(now)
            return (-request.priority, slack, request.arrival_order)

        return min(enumerate(queue), key=urgency)[0]

    def preemption_victim(
        self,
        inflights: Sequence[InFlightRequest],
        critical: Request,
        now: float,
        slack_threshold: float,
    ) -> int | None:
        """Pause the in-flight request with the most TTFT slack to spare.

        A victim is only named when its own slack comfortably exceeds both
        the critical request's slack and the criticality threshold — a
        request with no TTFT deadline (infinite slack, e.g. a batch job)
        always qualifies; one that is itself near its deadline never does.
        """
        if not inflights:
            return None
        index, victim = max(
            enumerate(inflights), key=lambda iv: iv[1].request.ttft_slack(now)
        )
        victim_slack = victim.request.ttft_slack(now)
        if victim_slack <= max(critical.ttft_slack(now), slack_threshold):
            return None
        return index


def make_policy(name: str) -> SchedulerPolicy:
    """Policy factory for the config's ``scheduler_policy`` knob."""
    if name == "fcfs":
        return FCFSPolicy()
    if name in ("slo", "slo-aware"):
        return SLOAwarePolicy()
    raise ValueError(f"unknown scheduler policy {name!r} (expected 'fcfs' or 'slo')")
