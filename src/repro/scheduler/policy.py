"""Admission-order policies for the request scheduler."""

from __future__ import annotations

import abc
from typing import Sequence

from .request import Request

__all__ = ["SchedulerPolicy", "FCFSPolicy", "SLOAwarePolicy", "make_policy"]


class SchedulerPolicy(abc.ABC):
    """Chooses which queued request to consider for admission next."""

    name = "base"

    @abc.abstractmethod
    def select(self, queue: Sequence[Request], now: float) -> int:
        """Index into ``queue`` of the request to try admitting next."""


class FCFSPolicy(SchedulerPolicy):
    """First come, first served: strict arrival order."""

    name = "fcfs"

    def select(self, queue: Sequence[Request], now: float) -> int:
        return 0


class SLOAwarePolicy(SchedulerPolicy):
    """Least TTFT slack first, with priority and arrival-order tiebreaks.

    A request whose SLO deadline is about to pass (small or negative slack)
    jumps ahead of requests with loose or absent deadlines; explicit
    ``priority`` dominates slack so operators can force ordering.
    """

    name = "slo"

    def __init__(self, default_ttft_seconds: float = 60.0):
        self.default_ttft_seconds = default_ttft_seconds

    def select(self, queue: Sequence[Request], now: float) -> int:
        def urgency(indexed: tuple[int, Request]) -> tuple[float, float, int]:
            _, request = indexed
            slack = request.ttft_slack(now)
            if slack == float("inf"):
                slack = self.default_ttft_seconds - request.waited_seconds(now)
            return (-request.priority, slack, request.arrival_order)

        return min(enumerate(queue), key=urgency)[0]


def make_policy(name: str) -> SchedulerPolicy:
    """Policy factory for the config's ``scheduler_policy`` knob."""
    if name == "fcfs":
        return FCFSPolicy()
    if name in ("slo", "slo-aware"):
        return SLOAwarePolicy()
    raise ValueError(f"unknown scheduler policy {name!r} (expected 'fcfs' or 'slo')")
