"""Multi-tenant scheduling: weighted fairness, quotas, and backpressure.

The serving frontend attributes every request to a *tenant*; this module is
the policy layer that keeps tenants from starving each other:

* :class:`TenantSpec` declares a tenant — its deficit-round-robin ``weight``
  and three optional governors: ``max_inflight`` (concurrent admitted
  requests), ``reserved_bytes_budget`` (a per-tenant slice of the admission
  budget), and ``max_queued`` (the backpressure threshold — a submission
  beyond it is refused with :class:`~repro.errors.TenantThrottledError`, the
  HTTP 429 path, instead of queuing without bound);

* :class:`TenantGovernor` plugs into :class:`RequestScheduler`: admission
  *order across tenants* is deficit round robin (each visit a backlogged
  tenant's deficit grows by ``quantum x weight``; a request is admitted when
  the deficit covers its token cost and the cost is then deducted), while the
  order *within* one tenant is still the wrapped FCFS/SLO policy — so SLO
  urgency keeps working inside each tenant's share.  Tenants at their
  in-flight quota or byte budget are skipped (their deficit neither grows nor
  resets: they are self-limited, not starved);

* the governor also keeps the per-tenant counters (in flight, queued,
  deferred, throttled, tokens served, ...) that ``ServiceStats`` and
  ``memory_report()`` expose, so fairness is observable, not just enforced.

The scheduler calls the ``on_*`` lifecycle hooks; nothing here touches model
or storage state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigError, TenantThrottledError, UnknownTenantError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policy import SchedulerPolicy
    from .request import InFlightRequest, Request

__all__ = ["TenantSpec", "TenantStats", "TenantGovernor", "DEFAULT_TENANT"]

DEFAULT_TENANT = "default"
"""Tenant requests fall under when the caller names none."""


@dataclass(frozen=True)
class TenantSpec:
    """Declared limits and fair-queuing weight of one tenant."""

    name: str
    weight: int = 1
    """Deficit-round-robin weight: a tenant with weight 3 is entitled to 3x
    the admitted token throughput of a weight-1 tenant under saturation."""
    max_inflight: int | None = None
    """Concurrent admitted (running or preempted) requests; ``None`` leaves
    the tenant bounded only by the scheduler's global ``max_inflight``."""
    max_queued: int | None = None
    """Queue-depth backpressure threshold: a submission finding this many of
    the tenant's requests already queued raises ``TenantThrottledError``
    (HTTP 429) instead of queuing.  ``None`` never throttles."""
    reserved_bytes_budget: int | None = None
    """Cap on the tenant's concurrently reserved admission bytes (the sum of
    its in-flight requests' estimates); ``None`` is uncapped."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must not be empty")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r} weight must be positive, got {self.weight}")
        if self.max_inflight is not None and self.max_inflight <= 0:
            raise ConfigError(
                f"tenant {self.name!r} max_inflight must be positive when set, "
                f"got {self.max_inflight}"
            )
        if self.max_queued is not None and self.max_queued <= 0:
            raise ConfigError(
                f"tenant {self.name!r} max_queued must be positive when set, "
                f"got {self.max_queued}"
            )
        if self.reserved_bytes_budget is not None and self.reserved_bytes_budget <= 0:
            raise ConfigError(
                f"tenant {self.name!r} reserved_bytes_budget must be positive "
                f"when set, got {self.reserved_bytes_budget}"
            )


@dataclass
class TenantStats:
    """Live counters of one tenant (mutated by the governor's hooks)."""

    inflight: int = 0
    """Admitted requests not yet terminal (running or preempted)."""
    reserved_bytes: int = 0
    """Sum of the in-flight requests' admission estimates."""
    deficit_tokens: float = 0.0
    """The DRR deficit counter (token-denominated service credit)."""
    admitted: int = 0
    completed: int = 0
    cancelled: int = 0
    rejected: int = 0
    failed: int = 0
    deferred: int = 0
    """Requests that waited on the global memory budget at least once."""
    throttled: int = 0
    """Submissions refused by queue-depth backpressure (the HTTP 429 count)."""
    tokens_served: int = 0
    """Generated tokens delivered across the tenant's finished requests."""
    service_seconds_ema: float = 0.0
    """Exponential moving average of one request's compute time (prefill +
    decode), the basis of the ``Retry-After`` hint."""


class TenantGovernor:
    """Deficit-round-robin admission across tenants, plus quota bookkeeping.

    ``strict`` rejects unknown tenant names (``UnknownTenantError``); without
    it, a first-seen tenant is auto-registered with ``default_spec``'s
    limits.  ``quantum_tokens`` is the per-weight-unit deficit replenishment:
    one full scheduling cycle entitles a tenant to ``quantum x weight`` more
    admitted tokens, which is what makes long-run admitted-token throughput
    proportional to the weights.
    """

    def __init__(
        self,
        specs: Sequence[TenantSpec] = (),
        quantum_tokens: int = 256,
        strict: bool = False,
        default_spec: TenantSpec | None = None,
    ):
        if quantum_tokens <= 0:
            raise ConfigError(f"quantum_tokens must be positive, got {quantum_tokens}")
        self.quantum_tokens = quantum_tokens
        self.strict = strict
        self.default_spec = default_spec or TenantSpec(name=DEFAULT_TENANT)
        self._specs: dict[str, TenantSpec] = {}
        self._stats: dict[str, TenantStats] = {}
        self._ring: list[str] = []
        """Round-robin visiting order (registration order)."""
        self._current = 0
        """Ring index the next DRR scan starts from."""
        self._visiting = False
        """True while ``_current``'s tenant is mid-burst (it was picked last
        and keeps the turn until its deficit runs out).  A mid-burst tenant is
        *not* replenished — replenishment happens once per rotation arrival,
        which is what makes long-run shares proportional to the weights."""
        for spec in specs:
            if spec.name in self._specs:
                raise ConfigError(f"duplicate tenant spec {spec.name!r}")
            self._register(spec)
        if not strict and DEFAULT_TENANT not in self._specs:
            self._register(
                TenantSpec(
                    name=DEFAULT_TENANT,
                    weight=self.default_spec.weight,
                    max_inflight=self.default_spec.max_inflight,
                    max_queued=self.default_spec.max_queued,
                    reserved_bytes_budget=self.default_spec.reserved_bytes_budget,
                )
            )

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def _register(self, spec: TenantSpec) -> TenantSpec:
        self._specs[spec.name] = spec
        self._stats[spec.name] = TenantStats()
        self._ring.append(spec.name)
        return spec

    def resolve(self, name: str | None) -> TenantSpec:
        """The spec serving ``name`` (auto-registering when not strict)."""
        name = name or DEFAULT_TENANT
        spec = self._specs.get(name)
        if spec is not None:
            return spec
        if self.strict:
            known = ", ".join(repr(n) for n in self._ring) or "none"
            raise UnknownTenantError(
                f"unknown tenant {name!r} (strict tenant registry; declared: {known})"
            )
        return self._register(
            TenantSpec(
                name=name,
                weight=self.default_spec.weight,
                max_inflight=self.default_spec.max_inflight,
                max_queued=self.default_spec.max_queued,
                reserved_bytes_budget=self.default_spec.reserved_bytes_budget,
            )
        )

    def known_tenants(self) -> list[str]:
        return list(self._ring)

    def spec(self, name: str) -> TenantSpec:
        return self._specs[name]

    def stats(self, name: str) -> TenantStats:
        return self._stats[name]

    # ------------------------------------------------------------------
    # backpressure (the submit-time 429 path)
    # ------------------------------------------------------------------
    def check_backpressure(self, name: str, queued: int) -> None:
        """Refuse a submission when the tenant's queue is at its limit.

        ``queued`` is the tenant's current scheduler queue depth.  Raises
        :class:`TenantThrottledError` carrying the queue position the request
        would have taken and a ``Retry-After`` hint derived from the tenant's
        recent per-request service time (how long until roughly one queue
        slot frees up).
        """
        spec = self.resolve(name)
        if spec.max_queued is None or queued < spec.max_queued:
            return
        stats = self._stats[spec.name]
        stats.throttled += 1
        per_request = stats.service_seconds_ema or 1.0
        retry_after = max(1.0, per_request * max(stats.inflight + 1, 1))
        raise TenantThrottledError(
            f"tenant {spec.name!r} has {queued} requests queued "
            f"(max_queued={spec.max_queued}); retry in ~{retry_after:.0f}s",
            tenant=spec.name,
            queue_depth=queued,
            queue_position=queued + 1,
            retry_after_seconds=retry_after,
        )

    # ------------------------------------------------------------------
    # deficit-round-robin admission order
    # ------------------------------------------------------------------
    @staticmethod
    def request_cost(request: "Request") -> int:
        """A request's DRR cost: the tokens it will make the service process."""
        return request.num_prompt_tokens + request.max_new_tokens

    def _eligible(self, name: str) -> bool:
        """Whether the tenant may take another admission right now."""
        spec = self._specs[name]
        stats = self._stats[name]
        if spec.max_inflight is not None and stats.inflight >= spec.max_inflight:
            return False
        if (
            spec.reserved_bytes_budget is not None
            and stats.reserved_bytes >= spec.reserved_bytes_budget
        ):
            return False
        return True

    def select(
        self, queue: Sequence["Request"], policy: "SchedulerPolicy", now: float
    ) -> int | None:
        """Index into ``queue`` of the next request to try admitting.

        One deficit-round-robin scan over the tenant ring: the first visited
        tenant that is backlogged, under quota, and whose deficit (after at
        most one ``quantum x weight`` replenishment) covers its head
        request's cost wins; the head request *within* a tenant is whatever
        the wrapped policy picks from that tenant's slice of the queue.
        ``None`` means no tenant may admit right now (all backlogged tenants
        are at quota).  A tenant whose backlog emptied has its deficit reset
        — credit does not accumulate across idle periods.
        """
        by_tenant: dict[str, list[int]] = {}
        for index, request in enumerate(queue):
            by_tenant.setdefault(request.tenant, []).append(index)
        for name in self._ring:
            if name not in by_tenant:
                self._stats[name].deficit_tokens = 0.0
        if not by_tenant:
            return None
        for name in by_tenant:
            if name not in self._specs:
                # a request was submitted around the governor (tests, direct
                # scheduler use); adopt the tenant so it can be scheduled
                self.resolve(name)
        ring = self._ring
        size = len(ring)
        start = self._current
        start_visiting = self._visiting
        # when the scan starts mid-burst the start tenant gets no arrival
        # replenishment at offset 0; one extra offset lets the rotation come
        # back around to it as a *fresh* visit, so a lone tenant that just
        # exhausted its burst is replenished in this call instead of stalling
        for offset in range(size + (1 if start_visiting else 0)):
            position = (start + offset) % size
            name = ring[position]
            fresh_visit = offset > 0 or not start_visiting
            indices = by_tenant.get(name)
            if not indices:
                continue
            if not self._eligible(name):
                continue  # self-limited: skip without replenishing or resetting
            stats = self._stats[name]
            subqueue = [queue[i] for i in indices]
            head = indices[policy.select(subqueue, now)]
            cost = self.request_cost(queue[head])
            if fresh_visit and stats.deficit_tokens < cost:
                stats.deficit_tokens += self.quantum_tokens * self._specs[name].weight
            if stats.deficit_tokens >= cost:
                self._current = position
                self._visiting = True
                return head
            # cannot afford its head yet: keep the (replenished) deficit and
            # give the turn to the next tenant; a large request saves up
            # across rotations exactly like a large packet in classic DRR
            self._current = (position + 1) % size
            self._visiting = False
        return None

    # ------------------------------------------------------------------
    # scheduler lifecycle hooks
    # ------------------------------------------------------------------
    def on_admitted(self, request: "Request", reserved_bytes: int) -> None:
        stats = self._stats[self.resolve(request.tenant).name]
        stats.deficit_tokens = max(stats.deficit_tokens - self.request_cost(request), 0.0)
        stats.inflight += 1
        stats.reserved_bytes += reserved_bytes
        stats.admitted += 1

    def on_deferred(self, request: "Request") -> None:
        """First time a request waits on the global memory budget."""
        self._stats[self.resolve(request.tenant).name].deferred += 1

    def on_rejected(self, request: "Request") -> None:
        self._stats[self.resolve(request.tenant).name].rejected += 1

    def on_failed(self, request: "Request") -> None:
        """Session setup raised after admission bookkeeping never started."""
        self._stats[self.resolve(request.tenant).name].failed += 1

    def on_finished(self, inflight: "InFlightRequest") -> None:
        stats = self._stats[self.resolve(inflight.request.tenant).name]
        stats.inflight = max(stats.inflight - 1, 0)
        stats.reserved_bytes = max(stats.reserved_bytes - inflight.estimated_bytes, 0)
        stats.completed += 1
        stats.tokens_served += inflight.num_generated
        compute = inflight.prefill_seconds + sum(inflight.decode_seconds)
        if compute > 0:
            alpha = 0.2
            stats.service_seconds_ema = (
                compute
                if stats.service_seconds_ema == 0.0
                else (1 - alpha) * stats.service_seconds_ema + alpha * compute
            )

    def on_cancelled_queued(self, request: "Request") -> None:
        self._stats[self.resolve(request.tenant).name].cancelled += 1

    def on_cancelled_inflight(self, inflight: "InFlightRequest") -> None:
        stats = self._stats[self.resolve(inflight.request.tenant).name]
        stats.inflight = max(stats.inflight - 1, 0)
        stats.reserved_bytes = max(stats.reserved_bytes - inflight.estimated_bytes, 0)
        stats.cancelled += 1
        stats.tokens_served += inflight.num_generated

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self, queued_by_tenant: dict[str, int] | None = None) -> dict[str, dict]:
        """One observable row per tenant (the ``memory_report()`` payload).

        ``queued_by_tenant`` supplies the live scheduler queue depths (the
        governor does not watch the queue itself); omitted tenants report 0.
        """
        queued_by_tenant = queued_by_tenant or {}
        rows = {}
        for name in self._ring:
            spec = self._specs[name]
            stats = self._stats[name]
            rows[name] = {
                "weight": spec.weight,
                "inflight": stats.inflight,
                "queued": queued_by_tenant.get(name, 0),
                "reserved_bytes": stats.reserved_bytes,
                "admitted": stats.admitted,
                "completed": stats.completed,
                "cancelled": stats.cancelled,
                "rejected": stats.rejected,
                "failed": stats.failed,
                "deferred": stats.deferred,
                "throttled_429": stats.throttled,
                "tokens_served": stats.tokens_served,
            }
        return rows
