"""Admission control against a global GPU-memory budget.

Every admitted request reserves its estimated GPU-resident footprint (window
cache + KV it will append during prefill and decode).  A request whose
estimate exceeds the whole budget can never run and is rejected outright; one
that merely doesn't fit *right now* is deferred until in-flight requests
finish and release their reservations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionDecision", "AdmissionStats", "AdmissionController"]


class AdmissionDecision:
    """Outcome of an admission check."""

    ADMIT = "admit"
    DEFER = "defer"
    REJECT = "reject"


@dataclass
class AdmissionStats:
    """Counters of admission outcomes.

    ``deferral_attempts`` counts *attempts*, not requests — one request
    waiting on budget is re-tried every scheduler step.  The scheduler's
    ``SchedulerStats.deferrals`` counts unique deferred requests.
    """

    admitted: int = 0
    deferral_attempts: int = 0
    rejected: int = 0


class AdmissionController:
    """Reserves slices of a global byte budget for in-flight requests."""

    def __init__(self, budget_bytes: int | None = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive when set, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._committed_bytes = 0
        self.stats = AdmissionStats()

    @property
    def committed_bytes(self) -> int:
        return self._committed_bytes

    @property
    def available_bytes(self) -> float:
        if self.budget_bytes is None:
            return float("inf")
        return self.budget_bytes - self._committed_bytes

    def try_admit(self, estimated_bytes: int) -> str:
        """Admit (reserving the estimate), defer, or permanently reject."""
        if self.budget_bytes is not None:
            if estimated_bytes > self.budget_bytes:
                self.stats.rejected += 1
                return AdmissionDecision.REJECT
            if self._committed_bytes + estimated_bytes > self.budget_bytes:
                self.stats.deferral_attempts += 1
                return AdmissionDecision.DEFER
        self._committed_bytes += estimated_bytes
        self.stats.admitted += 1
        return AdmissionDecision.ADMIT

    def try_reserve_more(self, additional_bytes: int) -> bool:
        """Grow an existing reservation (a preempted request resuming).

        Not counted in :attr:`AdmissionStats.admitted` — the request was
        admitted once already; this only re-takes the slice of its
        reservation that preemption released.
        """
        if (
            self.budget_bytes is not None
            and self._committed_bytes + additional_bytes > self.budget_bytes
        ):
            return False
        self._committed_bytes += additional_bytes
        return True

    def release(self, reserved_bytes: int) -> None:
        """Return a finished request's reservation to the budget."""
        self._committed_bytes = max(0, self._committed_bytes - reserved_bytes)
