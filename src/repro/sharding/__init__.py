"""Sharded context serving: range-partitioned KV + indexes with fan-out.

The plan layer (:mod:`repro.sharding.plan`) is dependency-light and imported
eagerly — ``core.db`` uses it to cut contexts into shards.  The router layer
(:mod:`repro.sharding.router`, :mod:`repro.sharding.session`) imports
``core.service`` (which imports ``core.db``), so exporting it eagerly here
would close an import cycle; those symbols resolve lazily on first access.
"""

from __future__ import annotations

from .plan import ShardPlan, ShardRange, parse_shard_id, shard_context_id, slice_snapshot

__all__ = [
    "ShardPlan",
    "ShardRange",
    "shard_context_id",
    "parse_shard_id",
    "slice_snapshot",
    "ShardedContextRef",
    "ShardedSession",
    "ShardWorker",
    "WorkerGroup",
    "ShardedContextRouter",
]

_LAZY = {
    "ShardedContextRef": "session",
    "ShardedSession": "session",
    "ShardWorker": "router",
    "WorkerGroup": "router",
    "ShardedContextRouter": "router",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
