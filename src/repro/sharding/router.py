"""Sharded context serving: a router fanning decode steps out to shard owners.

The simulation harness for range-partitioned serving: a
:class:`WorkerGroup` holds N in-process :class:`~repro.core.service.InferenceService`
workers over one *shared* :class:`~repro.storage.backend.StorageBackend`
(no real RPC — every "remote call" is a Python method call on the owning
worker), and a :class:`ShardedContextRouter` owns admission, the sharded
catalog, and the per-decode-step protocol:

1. *(fine plans only)* *window-seed fan-out* — each owner computes the max
   window score over its slice of the attention window; the router takes the
   elementwise max and applies the session's local-KV floor, reproducing the
   unsharded seed bit-for-bit (it gates DIPRS pruning decisions);
2. *retrieval fan-out* — each owner runs the layer's plan against its
   shard-local indexes (coarse owners return raw block-score rows instead);
   the router merges per index kind so the merged selection matches what a
   single-owner index would return;
3. *attend fan-out* — each owner computes one
   :class:`~repro.llm.attention.PartialAttention` over its slice of the
   window plus its assigned retrieved positions; the router merges the shard
   partials and the session's local-KV partial by log-sum-exp
   (:meth:`~repro.core.attention_engine.DataCentricAttentionEngine.merge_sharded_partials`),
   which equals the unsharded softmax exactly.

Cross-shard merge exactness per index kind:

* **flat** — DIPR keeps every position scoring within ``beta`` of the best;
  the router concatenates per-shard DIPR results and re-applies the filter
  against the *global* best, which equals running DIPR over the full key set.
* **coarse** — shard boundaries are block-aligned, so shard-local blocks are
  exactly the global index's blocks over that range; the router concatenates
  per-shard block-score rows and reruns the shared top-k selection
  (:meth:`~repro.index.coarse.CoarseBlockIndex.top_blocks_from_scores`).
* **fine** — a DIPRS graph walk does not decompose exactly (each shard's
  graph only connects its own tokens); the router unions the per-shard walks
  and filters by the global best, which is the standard distributed-ANN merge.
  At one shard it is bit-identical to the unsharded walk.

A worker that owns no replica of a shard cold-loads it from the shared
backend (manifest refresh + touch), which is how rebalancing and failover
are modelled.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..core.attention_engine import DataCentricAttentionEngine
from ..core.config import AlayaDBConfig
from ..core.db import DB
from ..core.planner import ExecutionPlan, LayerIndexData, PlanExecutor, RetrievalOutcome
from ..core.service import InferenceService
from ..core.session import DecodeStepStats
from ..errors import AdmissionRejectedError, ContextNotFoundError, ReproError
from ..index.coarse import CoarseBlockIndex
from ..llm.attention import PartialAttention, partial_attention
from ..llm.generation import GenerationLoop, GenerationResult
from ..llm.model import TransformerModel
from ..llm.sampling import sample_token
from ..query.types import DIPRQuery, FilterPredicate, IndexKind, TopKQuery
from ..scheduler import AdmissionController
from ..storage.backend import InMemoryBackend, StorageBackend
from .plan import ShardRange, parse_shard_id
from .session import ShardedContextRef, ShardedSession

__all__ = ["ShardWorker", "WorkerGroup", "ShardedContextRouter"]

_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


class ShardWorker:
    """One serving process owning a set of context shards.

    Wraps an :class:`InferenceService` (its DB rides on the group's shared
    backend, so every worker sees one durable manifest) and adds the
    shard-owner protocol the router fans out to: window seeds, shard-local
    retrieval, raw coarse block scores, and partial attention over the
    shard's KV slice.
    """

    def __init__(self, worker_id: int, service: InferenceService):
        self.worker_id = worker_id
        self.service = service
        self.owned: dict[str, ShardRange] = {}
        self.engine = DataCentricAttentionEngine()
        self.executor = PlanExecutor(
            coarse_num_blocks=service.config.coarse_num_blocks,
            fine_frontier_batching=service.config.fine_frontier_batching,
        )
        # per-(shard, layer) retrieval views; invalidated when a spill/reload
        # replaces the shard's snapshot arrays
        self._layer_cache: dict[tuple[str, int], LayerIndexData] = {}
        self._cache_snapshots: dict[str, object] = {}

    @property
    def db(self) -> DB:
        return self.service.db

    @property
    def name(self) -> str:
        return f"worker-{self.worker_id}"

    def __repr__(self) -> str:
        return f"ShardWorker({self.name}, owns={sorted(self.owned)})"

    # ------------------------------------------------------------------
    # shard ownership
    # ------------------------------------------------------------------
    def assign(self, shard_cid: str, token_range: ShardRange) -> None:
        self.owned[shard_cid] = token_range

    def unassign(self, shard_cid: str) -> None:
        self.owned.pop(shard_cid, None)
        self._drop_cache(shard_cid)

    def release(self, shard_cid: str) -> None:
        """Drop ownership *and* free the local replica (durable copy stays)."""
        self.unassign(shard_cid)
        store = self.db.store_registry
        if shard_cid in store:
            store.spill(shard_cid)

    def _drop_cache(self, shard_cid: str) -> None:
        for key in [k for k in self._layer_cache if k[0] == shard_cid]:
            del self._layer_cache[key]
        self._cache_snapshots.pop(shard_cid, None)

    def ensure_loaded(self, shard_cid: str):
        """Make the shard resident locally, cold-loading from shared storage.

        A worker that has never seen the shard adopts it from the shared
        manifest first — that is the failover/rebalance path: any worker can
        begin serving any shard straight off the durable backend.
        """
        try:
            context = self.db.touch_context(shard_cid)
        except ContextNotFoundError:
            self.db.store_registry.refresh_from_manifest()
            context = self.db.touch_context(shard_cid)
        if self._cache_snapshots.get(shard_cid) is not context.snapshot:
            self._drop_cache(shard_cid)
            self._cache_snapshots[shard_cid] = context.snapshot
        return context

    def layer_data(self, shard_cid: str, layer: int, gqa_group_size: int) -> LayerIndexData:
        context = self.ensure_loaded(shard_cid)
        key = (shard_cid, layer)
        data = self._layer_cache.get(key)
        if data is None:
            fine = context.fine_indexes.get(layer)
            data = LayerIndexData(
                keys=context.keys(layer),
                fine_indexes=fine.indexes if fine is not None else None,
                coarse_indexes=context.coarse_indexes.get(layer),
                shared=fine.shared if fine is not None else True,
                gqa_group_size=gqa_group_size,
                # outcomes come back in *global* token space: the shard's
                # range start travels with its snapshot, so a cold-loaded
                # shard needs no assignment bookkeeping to answer correctly
                position_offset=int(context.snapshot.metadata.get("shard_start", 0)),
            )
            self._layer_cache[key] = data
        data.gqa_group_size = gqa_group_size
        return data

    # ------------------------------------------------------------------
    # shard-owner protocol (what the router fans out to)
    # ------------------------------------------------------------------
    def window_seed(
        self, shard_cid: str, layer: int, queries: np.ndarray, window_local: np.ndarray
    ) -> np.ndarray:
        """Max window score per query head over this shard's window slice.

        Mirrors :meth:`WindowCache.max_window_scores` operation-for-operation
        so the router's max-of-maxes reproduces the unsharded seed bitwise.
        """
        num_heads = queries.shape[0]
        if window_local.shape[0] == 0:
            return np.full(num_heads, -np.inf, dtype=np.float32)
        keys = self.ensure_loaded(shard_cid).keys(layer)
        num_kv_heads = keys.shape[0]
        gqa_group_size = num_heads // num_kv_heads
        scores = np.empty(num_heads, dtype=np.float32)
        for kv_head in range(num_kv_heads):
            window_keys = keys[kv_head][window_local]
            for head in range(kv_head * gqa_group_size, (kv_head + 1) * gqa_group_size):
                scores[head] = (window_keys @ queries[head]).max()
        return scores

    def retrieve(
        self,
        shard_cid: str,
        layer: int,
        plan: ExecutionPlan,
        queries: np.ndarray,
        seeds: np.ndarray | None,
        gqa_group_size: int,
    ) -> list[RetrievalOutcome]:
        """Run the layer plan against this shard's local indexes.

        Positions in the outcomes are global (``LayerIndexData.position_offset``);
        the plan's predicate must already be localized by the router.
        """
        data = self.layer_data(shard_cid, layer, gqa_group_size)
        return self.executor.retrieve_heads(plan, data, queries, window_max_scores=seeds)

    def coarse_block_scores(
        self, shard_cid: str, layer: int, queries: np.ndarray, gqa_group_size: int
    ) -> tuple[np.ndarray, int]:
        """Raw per-head block scores ``(num_query_heads, shard_blocks)``.

        The coarse merge is score-level, not result-level: the router
        concatenates these rows across shards (block-aligned boundaries make
        shard-local blocks identical to the global index's) and reruns the
        shared top-k, so selection matches the unsharded index exactly.
        Also returns the per-block representative count for work accounting.
        """
        context = self.ensure_loaded(shard_cid)
        indexes = context.coarse_indexes.get(layer)
        if not indexes:
            raise ReproError(f"shard {shard_cid!r} has no coarse indexes for layer {layer}")
        rows = [
            index.block_scores_batch(
                queries[kv_head * gqa_group_size : (kv_head + 1) * gqa_group_size]
            )
            for kv_head, index in enumerate(indexes)
        ]
        return np.concatenate(rows, axis=0), indexes[0].num_representatives

    def attend(
        self,
        shard_cid: str,
        layer: int,
        queries: np.ndarray,
        window_local: np.ndarray,
        retrieved_local: list[np.ndarray],
    ):
        """This shard's partial attention over (window ∩ shard) ∪ retrieved."""
        context = self.ensure_loaded(shard_cid)
        return self.engine.shard_layer_partial(
            queries, context.keys(layer), context.values(layer), window_local, retrieved_local
        )

    def attend_dense(
        self, shard_cid: str, layer: int, queries: np.ndarray, visible: int
    ) -> list[PartialAttention]:
        """Exact partials over the first ``visible`` shard tokens, per query row.

        ``queries`` is ``(num_query_heads, seq, head_dim)``; every prefill row
        sees the same stored-prefix slice (causality only bites on the
        session-local suffix, which the router handles), so the result is one
        combined partial per row.
        """
        context = self.ensure_loaded(shard_cid)
        keys = context.keys(layer)[:, :visible, :]
        values = context.values(layer)[:, :visible, :]
        num_heads, seq, _ = queries.shape
        window = np.arange(visible, dtype=np.int64)
        empty = [_EMPTY_POSITIONS] * num_heads
        partials = []
        for row in range(seq):
            partial, _ = self.engine.shard_layer_partial(
                queries[:, row, :], keys, values, window, empty
            )
            partials.append(partial)
        return partials

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def residency_report(self) -> dict:
        store = self.db.store_registry
        return {
            "used_bytes": int(self.db.buffer_manager.used_bytes),
            "resident_kv_bytes": int(store.resident_kv_bytes),
            "total_kv_bytes": int(store.total_kv_bytes),
            "num_owned_shards": len(self.owned),
            "owned_shards": sorted(self.owned),
        }


class WorkerGroup:
    """N in-process workers over one shared storage backend (no real RPC)."""

    def __init__(
        self,
        model: TransformerModel,
        config: AlayaDBConfig | None = None,
        backend: StorageBackend | None = None,
        num_workers: int = 2,
    ):
        if num_workers < 1:
            raise ReproError(f"a worker group needs at least 1 worker, got {num_workers}")
        self.model = model
        self.config = config or AlayaDBConfig()
        self.backend = backend if backend is not None else InMemoryBackend()
        self.workers = [
            ShardWorker(worker_id, InferenceService(model, self.config, backend=self.backend))
            for worker_id in range(num_workers)
        ]

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def worker(self, worker_id: int) -> ShardWorker:
        return self.workers[worker_id]

    def refresh(self) -> None:
        """Have every worker adopt new manifest entries from shared storage."""
        for worker in self.workers:
            worker.db.store_registry.refresh_from_manifest()

    def memory_report(self) -> dict:
        """Per-worker residency plus a per-shard placement/residency map."""
        workers = {worker.name: worker.residency_report() for worker in self.workers}
        shards: dict[str, dict] = {}
        for worker in self.workers:
            contexts = worker.service.memory_report(per_context=True)["contexts"]
            for context_id, row in contexts.items():
                parsed = parse_shard_id(context_id)
                if parsed is None:
                    continue
                base_id, shard_id = parsed
                entry = shards.setdefault(
                    context_id,
                    {
                        "context_id": base_id,
                        "shard_id": shard_id,
                        "kv_bytes": row["kv_bytes"],
                        "owner": None,
                        "resident_on": [],
                    },
                )
                if row["resident"]:
                    entry["resident_on"].append(worker.name)
                if context_id in worker.owned:
                    entry["owner"] = worker.name
        return {"workers": workers, "shards": shards}


class ShardedContextRouter:
    """Front door for sharded serving: catalog, admission, fan-out, merge.

    Ingest prefills a document once, cuts the context into block-aligned
    token-range shards (:meth:`DB.shard_context`), persists them to the
    shared backend, assigns owners (round-robin), and then *frees its own
    copies* — at steady state the KV lives only on the shard owners, which is
    what the per-worker memory bound in ``bench_sharded_serving`` measures.

    Generation mirrors :class:`InferenceService`'s request lifecycle (token
    stream, sampling, chunked prefill) but routes every touch of the stored
    prefix through the fan-out protocol described in the module docstring.
    """

    def __init__(
        self,
        model: TransformerModel,
        num_workers: int = 2,
        config: AlayaDBConfig | None = None,
        backend: StorageBackend | None = None,
        group: WorkerGroup | None = None,
    ):
        self.model = model
        if group is not None:
            self.group = group
            self.config = group.config
            self.backend = group.backend
        else:
            self.config = config or AlayaDBConfig()
            self.backend = backend if backend is not None else InMemoryBackend()
            self.group = WorkerGroup(
                model, config=self.config, backend=self.backend, num_workers=num_workers
            )
        self.db = DB(self.config, backend=self.backend)
        self.loop = GenerationLoop(model)
        self.engine = DataCentricAttentionEngine()
        self.admission = AdmissionController(self.config.scheduler_gpu_budget_bytes)
        self._catalog: dict[str, ShardedContextRef] = {}
        self._owners: dict[str, ShardWorker] = {}

    @property
    def workers(self) -> list[ShardWorker]:
        return self.group.workers

    def ref(self, context_id: str) -> ShardedContextRef:
        return self._require_ref(context_id)

    def _require_ref(self, context_id: str) -> ShardedContextRef:
        ref = self._catalog.get(context_id)
        if ref is None:
            raise ContextNotFoundError(f"context {context_id!r} is not in the sharded catalog")
        return ref

    # ------------------------------------------------------------------
    # ingest + placement
    # ------------------------------------------------------------------
    def ingest(
        self,
        document: str | list[int],
        context_id: str | None = None,
        num_shards: int | None = None,
        shard_token_range: int | None = None,
    ) -> ShardedContextRef:
        """Prefill, shard, persist, place; returns the catalog entry."""
        context = self.db.prefill_and_import(self.model, document, context_id=context_id)
        base_id = context.context_id
        plan, shards = self.db.shard_context(
            base_id, num_shards=num_shards, shard_token_range=shard_token_range
        )
        ref = ShardedContextRef(
            context_id=base_id,
            plan=plan,
            tokens=tuple(context.tokens),
            num_layers=context.num_layers,
            layers=frozenset(context.snapshot.keys),
            fine_layers=frozenset(context.fine_indexes),
            coarse_layers=frozenset(context.coarse_indexes),
        )
        self._catalog[base_id] = ref
        # persist-then-free on the ingest side: spill keeps the durable
        # objects and manifest rows the owners load from (remove would
        # delete them out from under every worker)
        store = self.db.store_registry
        for shard in shards:
            store.spill(shard.context_id)
        store.spill(base_id)
        for token_range in plan.ranges:
            worker = self._place(token_range.shard_id)
            self._assign(ref, token_range.shard_id, worker)
        return ref

    def _place(self, shard_id: int) -> ShardWorker:
        if self.config.shard_router_policy == "round_robin":
            return self.workers[shard_id % len(self.workers)]
        raise ReproError(f"unknown shard router policy {self.config.shard_router_policy!r}")

    def _assign(self, ref: ShardedContextRef, shard_id: int, worker: ShardWorker) -> None:
        shard_cid = ref.shard_id_of(shard_id)
        previous = self._owners.get(shard_cid)
        if previous is not None and previous is not worker:
            previous.release(shard_cid)
        worker.assign(shard_cid, ref.plan.range_of(shard_id))
        worker.ensure_loaded(shard_cid)
        self._owners[shard_cid] = worker

    def reassign_shard(self, context_id: str, shard_id: int, worker_id: int) -> ShardWorker:
        """Move one shard to another worker (cold-loads from shared storage)."""
        ref = self._require_ref(context_id)
        worker = self.group.worker(worker_id)
        self._assign(ref, shard_id, worker)
        return worker

    def shard_owner(self, context_id: str, shard_id: int) -> ShardWorker:
        ref = self._require_ref(context_id)
        return self._owners[ref.shard_id_of(shard_id)]

    # ------------------------------------------------------------------
    # generation (mirrors InferenceService's request lifecycle)
    # ------------------------------------------------------------------
    def generate(
        self,
        context_id: str,
        prompt: str | list[int] | None = None,
        max_new_tokens: int = 16,
        gpu_memory_budget_bytes: int | None = None,
    ) -> GenerationResult:
        ref = self._require_ref(context_id)
        tokenizer = self.loop.tokenizer
        tokens = list(ref.tokens) if prompt is None else self.db.tokenize(prompt)
        reused = _common_prefix_length(tokens, ref.tokens)
        if reused < self.config.min_reuse_tokens:
            reused = 0
        truncated = tokens[reused:]

        per_token = self.model.kv_bytes_per_token()
        window_tokens = min(self.config.window_total_tokens, reused)
        estimate = (len(truncated) + max_new_tokens + window_tokens) * per_token
        decision = self.admission.try_admit(estimate)
        if decision != "admit":
            raise AdmissionRejectedError(
                f"request needs {estimate} bytes; the router's admission "
                f"controller answered {decision!r}"
            )

        session = ShardedSession(
            ref=ref,
            fanout=self,
            config=self.config,
            reused_prefix_length=reused,
            gpu_memory_budget_bytes=gpu_memory_budget_bytes,
        )
        rng = self.loop.sampling.make_rng()
        generated: list[int] = []
        decode_seconds: list[float] = []
        finished_by_eos = False
        try:
            # an empty suffix (full prefix reuse) still needs one forward
            # pass for first-token logits, exactly like the service
            pending = list(truncated) if truncated else [tokenizer.bos_id]
            chunk_tokens = self.config.prefill_chunk_tokens
            start = time.perf_counter()
            logits = None
            while pending:
                chunk = pending[:chunk_tokens]
                del pending[: len(chunk)]
                logits, _ = self.model.prefill(np.asarray(chunk, dtype=np.int64), session)
            ttft = time.perf_counter() - start
            if max_new_tokens > 0:
                token = sample_token(logits, self.loop.sampling, rng)
                generated.append(token)
                finished_by_eos = token == tokenizer.eos_id
            while len(generated) < max_new_tokens and generated[-1] != tokenizer.eos_id:
                step_start = time.perf_counter()
                logits = self.model.decode_step(generated[-1], session)
                decode_seconds.append(time.perf_counter() - step_start)
                token = sample_token(logits, self.loop.sampling, rng)
                generated.append(token)
                finished_by_eos = token == tokenizer.eos_id
        finally:
            session.close()
            self.admission.release(estimate)
        return GenerationResult(
            prompt_tokens=list(truncated),
            generated_tokens=generated,
            text=tokenizer.decode(generated),
            ttft_seconds=ttft,
            decode_seconds=decode_seconds,
            finished_by_eos=finished_by_eos,
        )

    # ------------------------------------------------------------------
    # fan-out protocol: sparse decode
    # ------------------------------------------------------------------
    def sparse_attention(
        self, session: ShardedSession, queries: np.ndarray, layer: int
    ) -> tuple[np.ndarray, DecodeStepStats]:
        """One sharded sparse decode step for one layer.

        ``queries`` is ``(num_query_heads, head_dim)``; returns the merged
        per-head outputs and the step's work statistics.
        """
        ref = session.sharded_ref
        plan = session.plan_for_layer(layer)
        prefix = session.reused_prefix_length
        gqa_group_size = self.model.config.gqa_group_size
        num_heads, head_dim = queries.shape
        window_global = session.window.positions(prefix)
        local_keys, local_values = session.local_snapshot(layer)
        local_len = int(local_keys.shape[1])
        shard_cids = [ref.shard_id_of(rng.shard_id) for rng in ref.plan.ranges]
        owners = [self._owners[cid] for cid in shard_cids]

        # --- round 0 (fine only): window-seed fan-out --------------------
        seeds = None
        if plan.index_kind == IndexKind.FINE:
            seeds = self._fanout_window_seeds(
                ref, owners, shard_cids, layer, queries, window_global
            )
            if local_len:
                for head in range(num_heads):
                    local_best = float(
                        (local_keys[head // gqa_group_size] @ queries[head]).max()
                    )
                    seeds[head] = max(float(seeds[head]), local_best)

        # --- round A: retrieval fan-out + global merge -------------------
        stats = DecodeStepStats(num_heads=num_heads)
        if plan.index_kind == IndexKind.COARSE:
            merged = self._merge_coarse(ref, owners, shard_cids, layer, plan, queries,
                                        gqa_group_size, stats)
        else:
            merged = self._merge_scan(ref, owners, shard_cids, layer, plan, queries,
                                      seeds, gqa_group_size, stats)
        retrieved = [positions[positions < prefix] for positions in merged]

        # --- round B: attend fan-out + log-sum-exp merge -----------------
        partials: list[PartialAttention] = []
        for rng, worker, shard_cid in zip(ref.plan.ranges, owners, shard_cids):
            window_local = rng.to_local(rng.slice_global(window_global))
            retrieved_local = [rng.to_local(rng.slice_global(pos)) for pos in retrieved]
            if window_local.shape[0] == 0 and not any(
                pos.shape[0] for pos in retrieved_local
            ):
                continue
            partial, breakdowns = worker.attend(
                shard_cid, layer, queries, window_local, retrieved_local
            )
            partials.append(partial)
            for breakdown in breakdowns:
                stats.num_window_tokens += breakdown.num_window_tokens
                stats.num_selected_tokens += breakdown.num_retrieved_tokens
        if local_len:
            partials.append(
                partial_attention(queries, local_keys, local_values, scale=self.engine.scale)
            )
            stats.num_local_tokens += local_len * num_heads
        outputs = self.engine.merge_sharded_partials(partials, num_heads, head_dim)
        return outputs, stats

    def _fanout_window_seeds(
        self, ref, owners, shard_cids, layer, queries, window_global
    ) -> np.ndarray:
        """Global window seeds = elementwise max over shard window slices."""
        num_heads = queries.shape[0]
        seeds = np.full(num_heads, -np.inf, dtype=np.float32)
        for rng, worker, shard_cid in zip(ref.plan.ranges, owners, shard_cids):
            window_local = rng.to_local(rng.slice_global(window_global))
            if window_local.shape[0] == 0:
                continue
            shard_seeds = worker.window_seed(shard_cid, layer, queries, window_local)
            np.maximum(seeds, shard_seeds, out=seeds)
        return seeds

    def _merge_scan(
        self, ref, owners, shard_cids, layer, plan, queries, seeds, gqa_group_size, stats
    ) -> list[np.ndarray]:
        """Flat/fine merge: union per-shard results, re-filter by global best."""
        num_heads = queries.shape[0]
        per_head_positions: list[list[np.ndarray]] = [[] for _ in range(num_heads)]
        per_head_scores: list[list[np.ndarray]] = [[] for _ in range(num_heads)]
        for rng, worker, shard_cid in zip(ref.plan.ranges, owners, shard_cids):
            shard_plan = self._localize_plan(plan, rng)
            if shard_plan is None:
                continue
            outcomes = worker.retrieve(
                shard_cid, layer, shard_plan, queries, seeds, gqa_group_size
            )
            for head, outcome in enumerate(outcomes):
                per_head_positions[head].append(outcome.positions)
                per_head_scores[head].append(outcome.scores)
                stats.num_distance_computations += outcome.num_distance_computations
                stats.num_graph_hops += outcome.num_hops
        merged: list[np.ndarray] = []
        for head in range(num_heads):
            if not per_head_positions[head]:
                merged.append(_EMPTY_POSITIONS)
                continue
            positions = np.concatenate(per_head_positions[head])
            scores = np.concatenate(per_head_scores[head])
            merged.append(self._select_global(plan, positions, scores))
        return merged

    @staticmethod
    def _select_global(plan: ExecutionPlan, positions: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Re-apply the plan's selection rule over the cross-shard union."""
        if positions.shape[0] == 0:
            return _EMPTY_POSITIONS
        query = plan.query
        if isinstance(query, DIPRQuery):
            # same float semantics as FlatIndex: the global best replaces each
            # shard's local best, so survivors match a single-owner DIPR scan
            best = scores.max()
            keep = scores >= best - query.beta
            positions, scores = positions[keep], scores[keep]
            if query.max_tokens is not None and positions.shape[0] > query.max_tokens:
                order = np.argsort(-scores)[: query.max_tokens]
                positions = positions[order]
            return positions.astype(np.int64)
        if isinstance(query, TopKQuery):
            k = min(int(query.k), positions.shape[0])
            order = np.argsort(-scores)[:k]
            return positions[order].astype(np.int64)
        raise ReproError(f"cannot merge retrieval results for query {query!r}")

    def _merge_coarse(
        self, ref, owners, shard_cids, layer, plan, queries, gqa_group_size, stats
    ) -> list[np.ndarray]:
        """Coarse merge: concatenate block-score rows, rerun the global top-k.

        Every shard scores its blocks regardless of the predicate — exactly
        like the single-owner index, which lets beyond-prefix blocks win
        selection slots and filters positions afterwards.
        """
        num_heads = queries.shape[0]
        score_rows = []
        num_representatives = 0
        for worker, shard_cid in zip(owners, shard_cids):
            scores, shard_reps = worker.coarse_block_scores(
                shard_cid, layer, queries, gqa_group_size
            )
            score_rows.append(scores)
            num_representatives = max(num_representatives, shard_reps)
        block_scores = np.concatenate(score_rows, axis=1)
        total_blocks = block_scores.shape[1]
        block_size = self.config.coarse_block_size
        num_blocks = max(1, min(self.config.coarse_num_blocks, total_blocks))
        top = CoarseBlockIndex.top_blocks_from_scores(block_scores, num_blocks)
        stats.num_distance_computations += num_heads * total_blocks * num_representatives
        merged = []
        for head in range(num_heads):
            positions = np.concatenate(
                [
                    np.arange(
                        block * block_size,
                        min((block + 1) * block_size, ref.num_tokens),
                        dtype=np.int64,
                    )
                    for block in top[head]
                ]
            ) if top.shape[1] else _EMPTY_POSITIONS
            if plan.predicate is not None:
                positions = positions[positions < plan.predicate.max_position]
            merged.append(positions)
        return merged

    @staticmethod
    def _localize_plan(plan: ExecutionPlan, rng: ShardRange) -> ExecutionPlan | None:
        """Rewrite the plan's global predicate into shard-local token space.

        Returns ``None`` when the predicate excludes the entire shard (the
        router then skips the owner wholesale).
        """
        if plan.predicate is None:
            return plan
        local_max = min(plan.predicate.max_position, rng.stop) - rng.start
        if local_max <= 0:
            return None
        if local_max >= rng.num_tokens:
            return replace(plan, predicate=None)
        return replace(plan, predicate=FilterPredicate(max_position=int(local_max)))

    # ------------------------------------------------------------------
    # fan-out protocol: dense (prefill) attention
    # ------------------------------------------------------------------
    def dense_attention(self, session: ShardedSession, q: np.ndarray, layer: int) -> np.ndarray:
        """Exact causal attention over the sharded prefix + local suffix.

        ``q`` is ``(num_query_heads, seq, head_dim)``.  Every prefill row sees
        the full stored prefix (the suffix starts after it), so the per-shard
        partials are causal-free; causality applies only to the session-local
        KV, whose visible length grows by one per row.
        """
        ref = session.sharded_ref
        prefix = session.reused_prefix_length
        num_heads, seq, head_dim = q.shape
        local_keys, local_values = session.local_snapshot(layer)
        local_len = int(local_keys.shape[1])

        shard_rows: list[list[PartialAttention]] = []
        for rng in ref.plan.ranges:
            visible = min(rng.stop, prefix) - rng.start
            if visible <= 0:
                continue
            shard_cid = ref.shard_id_of(rng.shard_id)
            shard_rows.append(
                self._owners[shard_cid].attend_dense(shard_cid, layer, q, visible)
            )

        outputs = np.zeros((num_heads, seq, head_dim), dtype=np.float32)
        for row in range(seq):
            partials = [rows[row] for rows in shard_rows]
            visible_local = local_len - seq + row + 1
            if visible_local > 0:
                partials.append(
                    partial_attention(
                        q[:, row, :],
                        local_keys[:, :visible_local, :],
                        local_values[:, :visible_local, :],
                        scale=self.engine.scale,
                    )
                )
            outputs[:, row, :] = self.engine.merge_sharded_partials(
                partials, num_heads, head_dim
            )
        return outputs

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_report(self) -> dict:
        """Group-wide residency map plus router-side accounting."""
        report = self.group.memory_report()
        report["router"] = {
            "admission_committed_bytes": self.admission.committed_bytes,
            "num_contexts": len(self._catalog),
            "num_placed_shards": len(self._owners),
        }
        return report


def _common_prefix_length(tokens: list[int], reference: tuple[int, ...]) -> int:
    limit = min(len(tokens), len(reference))
    matched = 0
    while matched < limit and tokens[matched] == reference[matched]:
        matched += 1
    return matched
