"""A session connected to a *sharded* context instead of a single stored one.

:class:`ShardedSession` plays the role :class:`~repro.core.session.Session`
plays for a single-owner context, but the KV cache and indexes it reuses are
range-partitioned across shard owners.  The session keeps everything that is
request-local — the window bookkeeping, the local (late-materialized) KV, the
optimizer plans, decode statistics — and delegates everything that touches
the stored prefix to a *fan-out* object (the
:class:`~repro.sharding.router.ShardedContextRouter`), which fans retrieval
and partial attention out to the shard owners and merges their
:class:`~repro.llm.attention.PartialAttention` results by log-sum-exp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.session import Session
from ..query.types import IndexKind
from .plan import ShardPlan, shard_context_id

__all__ = ["ShardedContextRef", "ShardedSession"]


@dataclass(frozen=True)
class ShardedContextRef:
    """Catalog entry for one sharded context.

    Holds what the router and its sessions need *without* touching any KV
    data: the shard plan, the token sequence (for prefix matching against
    incoming prompts), and which layers carry which index kinds (so plan
    routing works exactly like :meth:`Session._use_sparse_path` does against
    a resident :class:`~repro.core.context_store.StoredContext`).
    """

    context_id: str
    plan: ShardPlan
    tokens: tuple[int, ...]
    num_layers: int
    layers: frozenset[int]
    fine_layers: frozenset[int]
    coarse_layers: frozenset[int]

    @property
    def num_tokens(self) -> int:
        return self.plan.num_tokens

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def shard_id_of(self, shard_id: int) -> str:
        """The storage/catalog id of shard ``shard_id``."""
        return shard_context_id(self.context_id, shard_id)


class ShardedSession(Session):
    """A running request whose reused prefix lives on N shard owners.

    The dense path (multi-token prefill of the non-reused suffix) and the
    sparse decode path both route through ``fanout`` — an object providing

    * ``sparse_attention(session, queries, layer) -> (outputs, stats)`` for a
      single-token decode (``queries`` is ``(num_query_heads, head_dim)``),
    * ``dense_attention(session, q, layer) -> outputs`` for exact causal
      attention over the sharded prefix plus the session's local KV
      (``q`` is ``(num_query_heads, seq, head_dim)``).

    Everything else — window positions, local KV, plan selection, stats — is
    inherited from :class:`Session` unchanged, so the optimizer's routing
    rules apply identically to sharded and single-owner serving.
    """

    def __init__(
        self,
        ref: ShardedContextRef,
        fanout,
        config=None,
        reused_prefix_length: int | None = None,
        gpu_memory_budget_bytes: int | None = None,
        on_close=None,
    ):
        super().__init__(
            config=config,
            context=None,
            num_layers=ref.num_layers,
            gpu_memory_budget_bytes=gpu_memory_budget_bytes,
            on_close=on_close,
        )
        self.sharded_ref = ref
        self._fanout = fanout
        # Session.__init__ zeroes the reused prefix when no StoredContext is
        # attached; the sharded prefix is reused through the fan-out instead
        self.reused_prefix_length = (
            ref.num_tokens if reused_prefix_length is None else int(reused_prefix_length)
        )

    # ------------------------------------------------------------------
    # connection state (no StoredContext is attached locally)
    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        return self.sharded_ref is not None and self.reused_prefix_length > 0

    def _use_sparse_path(self, layer: int) -> bool:
        if self.decode_mode_override == "dense":
            return False
        if not self.is_connected:
            return False
        ref = self.sharded_ref
        if layer not in ref.layers:
            return False
        plan = self._plans_for_context().get(layer)
        if plan is None or plan.is_full_attention:
            return False
        # shard indexes are built eagerly at shard time, so availability is a
        # property of the ref, not of any one worker's residency state
        if plan.index_kind == IndexKind.FINE and layer not in ref.fine_layers:
            return False
        if plan.index_kind == IndexKind.COARSE and layer not in ref.coarse_layers:
            return False
        return True

    # ------------------------------------------------------------------
    # attention paths (both fan out to the shard owners)
    # ------------------------------------------------------------------
    def _full_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        if self.is_connected and layer in self.sharded_ref.layers:
            return self._fanout.dense_attention(self, q, layer)
        return super()._full_attention(q, layer)

    def _sparse_attention(self, q: np.ndarray, layer: int) -> np.ndarray:
        outputs, stats = self._fanout.sparse_attention(self, q[:, 0, :], layer)
        self.record_decode_stats(stats, layer)
        return outputs[:, None, :]
