"""Token-range shard plans for context parallelism.

A long context's KV cache and vector indexes are range-partitioned into N
*shards*: shard ``i`` owns the tokens in ``[start_i, stop_i)``, their KV
block slice across every layer, and coarse/fine indexes built only over that
token range.  Attention over a range-partitioned KV cache composes exactly —
each shard computes a partial softmax over its slice and the partials merge
by log-sum-exp ("Context Parallelism for Scalable Million-Token Inference"),
which is precisely the machinery ``DataCentricAttentionEngine`` already uses
across the window/retrieved/local locations.

Shard boundaries should be aligned to the coarse block size: the coarse
index cuts blocks from offset 0 in ``block_size`` steps, so an aligned shard
produces exactly the blocks the full-context index would over that range and
the router's cross-shard top-block merge reproduces the unsharded selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..kvcache.serialization import KVSnapshot

__all__ = [
    "ShardRange",
    "ShardPlan",
    "shard_context_id",
    "parse_shard_id",
    "slice_snapshot",
]

_SHARD_SEPARATOR = "--shard"


@dataclass(frozen=True)
class ShardRange:
    """One shard's token range ``[start, stop)`` in global token space."""

    shard_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ReproError(f"shard_id must be non-negative, got {self.shard_id}")
        if not 0 <= self.start < self.stop:
            raise ReproError(
                f"shard range must satisfy 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    @property
    def num_tokens(self) -> int:
        return self.stop - self.start

    def contains(self, position: int) -> bool:
        return self.start <= position < self.stop

    def to_local(self, positions: np.ndarray) -> np.ndarray:
        """Map global positions (all inside this range) to shard-local ones."""
        return np.asarray(positions, dtype=np.int64) - np.int64(self.start)

    def slice_global(self, positions: np.ndarray) -> np.ndarray:
        """The subset of global ``positions`` that fall inside this range."""
        positions = np.asarray(positions, dtype=np.int64)
        return positions[(positions >= self.start) & (positions < self.stop)]


@dataclass(frozen=True)
class ShardPlan:
    """Range partitioning of one context's ``num_tokens`` tokens into shards.

    Ranges are contiguous, non-overlapping, cover ``[0, num_tokens)``, and
    are ordered by ``shard_id`` (== token order).
    """

    num_tokens: int
    ranges: tuple[ShardRange, ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ReproError("a shard plan needs at least one shard range")
        expected_start = 0
        for index, rng in enumerate(self.ranges):
            if rng.shard_id != index:
                raise ReproError(
                    f"shard ids must be dense and ordered: position {index} holds id {rng.shard_id}"
                )
            if rng.start != expected_start:
                raise ReproError(
                    f"shard {index} starts at {rng.start}, expected {expected_start} "
                    "(ranges must tile the context without gaps)"
                )
            expected_start = rng.stop
        if expected_start != self.num_tokens:
            raise ReproError(
                f"shard ranges cover [0, {expected_start}) but the context has "
                f"{self.num_tokens} tokens"
            )

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    def range_of(self, shard_id: int) -> ShardRange:
        return self.ranges[shard_id]

    def shard_of_position(self, position: int) -> int:
        """The shard owning a global token position (binary search)."""
        if not 0 <= position < self.num_tokens:
            raise ReproError(
                f"position {position} outside the context's [0, {self.num_tokens}) range"
            )
        starts = [rng.start for rng in self.ranges]
        return int(np.searchsorted(starts, position, side="right")) - 1

    def split_positions(self, positions: np.ndarray) -> list[np.ndarray]:
        """Partition global ``positions`` by owning shard (global positions out)."""
        return [rng.slice_global(positions) for rng in self.ranges]

    @classmethod
    def even(cls, num_tokens: int, num_shards: int, align: int = 1) -> "ShardPlan":
        """Split ``num_tokens`` into ``num_shards`` near-equal aligned ranges.

        Interior boundaries are rounded *down* to a multiple of ``align``
        (the coarse block size, typically).  Boundaries that collide after
        alignment are dropped, so very short contexts may yield fewer shards
        than requested — never an empty shard.
        """
        if num_tokens <= 0:
            raise ReproError(f"num_tokens must be positive, got {num_tokens}")
        if num_shards < 1:
            raise ReproError(f"num_shards must be at least 1, got {num_shards}")
        if align < 1:
            raise ReproError(f"align must be at least 1, got {align}")
        boundaries = [0]
        for index in range(1, num_shards):
            raw = (index * num_tokens) // num_shards
            aligned = (raw // align) * align
            if aligned > boundaries[-1]:
                boundaries.append(aligned)
        boundaries.append(num_tokens)
        ranges = tuple(
            ShardRange(shard_id=i, start=start, stop=stop)
            for i, (start, stop) in enumerate(zip(boundaries[:-1], boundaries[1:]))
        )
        return cls(num_tokens=num_tokens, ranges=ranges)

    @classmethod
    def by_token_range(cls, num_tokens: int, shard_token_range: int, align: int = 1) -> "ShardPlan":
        """Split into shards of about ``shard_token_range`` tokens each."""
        if shard_token_range <= 0:
            raise ReproError(f"shard_token_range must be positive, got {shard_token_range}")
        num_shards = max(1, round(num_tokens / shard_token_range))
        return cls.even(num_tokens, num_shards, align=align)


def shard_context_id(context_id: str, shard_id: int) -> str:
    """The storage/catalog id of one shard of ``context_id``."""
    return f"{context_id}{_SHARD_SEPARATOR}{shard_id:03d}"


def parse_shard_id(context_id: str) -> tuple[str, int] | None:
    """Invert :func:`shard_context_id`; None when ``context_id`` is not a shard."""
    base, separator, suffix = context_id.rpartition(_SHARD_SEPARATOR)
    if not separator or not suffix.isdigit():
        return None
    return base, int(suffix)


def slice_snapshot(snapshot: KVSnapshot, rng: ShardRange, plan: ShardPlan) -> KVSnapshot:
    """One shard's KV slice of a full-context snapshot.

    Tokens and per-layer K/V are sliced to ``[rng.start, rng.stop)``; the
    query samples are kept whole — they describe the query distribution that
    will probe the shard's indexes, which is the full request stream, not the
    shard's own token range.  Shard provenance lands in the metadata so a
    recovered shard remains identifiable.
    """
    if rng.stop > snapshot.num_tokens:
        raise ReproError(
            f"shard range [{rng.start}, {rng.stop}) exceeds the snapshot's "
            f"{snapshot.num_tokens} tokens"
        )
    keys = {
        layer: np.ascontiguousarray(layer_keys[:, rng.start:rng.stop, :])
        for layer, layer_keys in snapshot.keys.items()
    }
    values = {
        layer: np.ascontiguousarray(layer_values[:, rng.start:rng.stop, :])
        for layer, layer_values in snapshot.values.items()
    }
    metadata = dict(snapshot.metadata)
    metadata.update(
        {
            "shard_id": str(rng.shard_id),
            "shard_start": str(rng.start),
            "shard_stop": str(rng.stop),
            "shard_count": str(plan.num_shards),
            "shard_total_tokens": str(plan.num_tokens),
        }
    )
    return KVSnapshot(
        tokens=list(snapshot.tokens[rng.start:rng.stop]),
        keys=keys,
        values=values,
        metadata=metadata,
        query_samples=dict(snapshot.query_samples),
    )
