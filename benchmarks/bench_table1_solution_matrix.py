"""Table 1 — qualitative comparison of the LLM-inference solution categories.

The paper positions the three existing categories (coupled architecture, KV
cache disaggregation, retrieval-based sparse attention) against AlayaDB on
GPU memory consumption, inference latency and generation quality.  The
reproduction derives the same qualitative matrix from *measured* quantities:
the En.QA workload for quality, the calibrated cost model for decode latency
and the modelled resident KV for memory.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.baselines import (
    AlayaDBTTFTModel,
    DIPRSStrategy,
    FullAttentionStrategy,
    LMCacheStore,
    TopKRetrievalStrategy,
)
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.types import beta_from_alpha
from repro.simulator.cost_model import CostModel
from repro.simulator.device import GIB
from repro.simulator.slo import SLO
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.generator import generate_workload
from repro.workloads.infinite_bench import infinite_bench_task

EXPERIMENT = "Table 1: solution category matrix"

PAPER_CONTEXT = 150_000


def _measure_matrix():
    cost = CostModel()
    slo = SLO()
    # quality is averaged over one sparse task (En.QA) and one token-hungry
    # task (En.Sum with a dense critical structure): the static top-k of
    # category (3) loses exactly there, which is the paper's argument for its
    # "Medium/Bad" quality cell.
    builder = ContextIndexBuilder(IndexBuildConfig())
    workloads = []
    for task_name, overrides in (
        ("En.QA", {}),
        ("En.Sum", {"critical_fraction_low": 0.08, "critical_fraction_high": 0.15}),
    ):
        spec = infinite_bench_task(task_name, context_length=4096, num_decode_steps=3, **overrides)
        workload = generate_workload(spec)
        workload.context.fine_indexes, _ = builder.build_context(
            workload.context.snapshot.keys, workload.context.query_samples
        )
        workloads.append(workload)
    head_dim = workloads[0].spec.head_dim
    beta = beta_from_alpha(0.012, head_dim)

    def mean_eval(make_strategy):
        evaluations = [evaluate_strategy(make_strategy(), workload) for workload in workloads]
        primary = evaluations[0]
        primary.quality = float(np.mean([e.quality for e in evaluations]))
        return primary

    full = mean_eval(FullAttentionStrategy)
    topk = mean_eval(
        lambda: TopKRetrievalStrategy(k=100, initial_tokens=128, recent_tokens=512, reuse_context_indexes=True)
    )
    diprs = mean_eval(
        lambda: DIPRSStrategy(
            beta=beta, capacity_threshold=384, initial_tokens=128, recent_tokens=512, reuse_context_indexes=True
        )
    )

    kv_gib = PAPER_CONTEXT * cost.shape.kv_bytes_per_token / GIB

    def categorise_memory(gib: float) -> str:
        return "Large" if gib > 5 else "Small"

    def categorise_latency(seconds: float) -> str:
        if seconds > slo.tpot_seconds:
            return "High"
        return "Low" if seconds < slo.tpot_seconds / 2 else "Medium"

    def categorise_quality(quality: float) -> str:
        return "Good" if quality > 80 else ("Medium" if quality > 50 else "Bad")

    coupled_latency = cost.full_decode_seconds(PAPER_CONTEXT)
    disaggregated_ttft = LMCacheStore(cost).ttft_for_length(PAPER_CONTEXT).total_seconds
    retrieval_latency = topk.modeled_tpot_seconds(cost)
    alayadb_latency = diprs.modeled_tpot_seconds(cost)
    alayadb_ttft = AlayaDBTTFTModel(cost).ttft_for_length(PAPER_CONTEXT).total_seconds

    matrix = {
        "(1) Coupled architecture": {
            "memory_gib": kv_gib,
            "latency_s": coupled_latency,
            "quality": full.quality,
            "usability": "Good",
        },
        "(2) KV cache disaggregation": {
            "memory_gib": kv_gib,
            "latency_s": coupled_latency,  # decode is identical; TTFT improves via reuse
            "quality": full.quality,
            "usability": "Medium",
            "ttft_s": disaggregated_ttft,
        },
        "(3) Retrieval-based sparse attention": {
            "memory_gib": topk.gpu_memory_bytes(cost, include_weights=False) / GIB,
            "latency_s": retrieval_latency,
            "quality": topk.quality,
            "usability": "Bad",
        },
        "AlayaDB": {
            "memory_gib": diprs.gpu_memory_bytes(cost, include_weights=False) / GIB,
            "latency_s": alayadb_latency,
            "quality": diprs.quality,
            "usability": "Good",
            "ttft_s": alayadb_ttft,
        },
    }
    categories = {
        name: {
            "memory": categorise_memory(row["memory_gib"]),
            "latency": categorise_latency(row["latency_s"]),
            "quality": categorise_quality(row["quality"]),
            "usability": row["usability"],
        }
        for name, row in matrix.items()
    }
    return matrix, categories


def test_table1_solution_matrix(benchmark):
    matrix, categories = run_once(benchmark, _measure_matrix)

    rows = []
    for name, raw in matrix.items():
        cat = categories[name]
        rows.append(
            [
                name,
                f"{cat['memory']} ({raw['memory_gib']:.1f} GiB KV)",
                f"{cat['latency']} ({raw['latency_s'] * 1000:.0f} ms/token)",
                f"{cat['quality']} ({raw['quality']:.0f})",
                cat["usability"],
            ]
        )
    table = format_table(
        ["solution", "GPU memory", "decode latency", "generation quality", "usability"],
        rows,
        title="Paper Table 1: only AlayaDB achieves Small memory, Low latency and Good quality simultaneously.",
    )
    emit(EXPERIMENT, table)

    # the qualitative claims of Table 1
    assert categories["(1) Coupled architecture"]["memory"] == "Large"
    assert categories["(2) KV cache disaggregation"]["memory"] == "Large"
    assert categories["(3) Retrieval-based sparse attention"]["memory"] == "Small"
    assert categories["AlayaDB"]["memory"] == "Small"
    assert categories["AlayaDB"]["latency"] == "Low"
    assert categories["AlayaDB"]["quality"] == "Good"
    # AlayaDB is the only row that is Small + Low + Good at once
    winners = [
        name
        for name, cat in categories.items()
        if cat["memory"] == "Small" and cat["latency"] == "Low" and cat["quality"] == "Good"
    ]
    assert winners == ["AlayaDB"]
