"""Section 7.1 statistic — window coverage of the maximum inner product, and
the window-cache-enhanced DIPRS ablation.

The paper motivates seeding DIPRS with the cached window's maximum inner
product by the observation that (on math_find) a 32+32 token window already
contains the arg-max key for ~98% of queries.  The reproduction measures the
same coverage on the Math.F-style workload and then shows the effect of the
enhancement: with the window seed, DIPRS appends/explores fewer tokens for
the same result quality.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.critical_tokens import window_max_coverage
from repro.analysis.reporting import format_table
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.dipr import diprs_search
from repro.query.types import beta_from_alpha
from repro.workloads.generator import generate_workload
from repro.workloads.infinite_bench import infinite_bench_task

EXPERIMENT = "Window cache: max-IP coverage and DIPRS enhancement"


def _window_friendly_workload():
    """Math.F-style workload with an attention-sink key at the start.

    Real Llama attention puts enormous weight (and typically the largest raw
    inner product) on the first tokens; math_find additionally keeps its
    extreme numbers near the recent window.  The generator does not model the
    sink, so this bench plants one: position 0 of every KV head holds a
    slightly scaled copy of that head's strongest key, which is exactly the
    structure the paper's 98% coverage statistic comes from.
    """
    spec = infinite_bench_task("Math.F", context_length=4096, num_decode_steps=6, seed=301)
    workload = generate_workload(spec)
    keys = workload.context.snapshot.keys[0]
    for kv_head in range(spec.num_kv_heads):
        strongest = int(np.argmax(np.linalg.norm(keys[kv_head], axis=1)))
        keys[kv_head, 0, :] = 1.2 * keys[kv_head, strongest, :]
    return workload


def _run():
    workload = _window_friendly_workload()
    coverage = window_max_coverage(workload, initial_tokens=32, last_tokens=32)

    # ablation: DIPRS with and without the window seed
    spec = workload.spec
    context = workload.context
    context.fine_indexes, _ = ContextIndexBuilder(IndexBuildConfig()).build_context(
        context.snapshot.keys, context.query_samples
    )
    beta = beta_from_alpha(0.012, spec.head_dim)
    index = context.fine_indexes[0].index_for_kv_head(0)
    keys = context.keys(0)[0]
    window = np.concatenate([np.arange(0, 128), np.arange(spec.context_length - 512, spec.context_length)])

    seeded_work, unseeded_work, size_diff = [], [], []
    for step in range(spec.num_decode_steps):
        query = workload.query_for(step, 0, 0)
        window_max = float((keys[window] @ query).max())
        with_seed, seeded_stats = diprs_search(
            keys, index.graph, query, beta, [index.entry_point], capacity_threshold=128, window_max_score=window_max
        )
        without_seed, unseeded_stats = diprs_search(
            keys, index.graph, query, beta, [index.entry_point], capacity_threshold=128
        )
        seeded_work.append(seeded_stats.num_appended)
        unseeded_work.append(unseeded_stats.num_appended)
        size_diff.append(abs(len(with_seed) - len(without_seed)))
    return coverage, float(np.mean(seeded_work)), float(np.mean(unseeded_work)), float(np.mean(size_diff))


def test_window_coverage_and_seeded_diprs(benchmark):
    coverage, seeded_appended, unseeded_appended, size_diff = run_once(benchmark, _run)

    table = format_table(
        ["metric", "value"],
        [
            ["[32+32] window covers arg-max key", f"{coverage.coverage * 100:.1f}% of queries (paper: ~98% on math_find)"],
            ["DIPRS appended candidates (window seed)", round(seeded_appended, 1)],
            ["DIPRS appended candidates (no seed)", round(unseeded_appended, 1)],
            ["mean |result size difference|", round(size_diff, 1)],
        ],
        title="Window caching: coverage of the maximum inner product and its effect on DIPRS search work.",
    )
    emit(EXPERIMENT, table)

    assert coverage.coverage > 0.6
    # the seed never increases the search work and leaves results essentially unchanged
    assert seeded_appended <= unseeded_appended + 1e-6
    assert size_diff < 10
