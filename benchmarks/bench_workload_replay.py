"""Trace-driven workload replay — the end-to-end serving panel.

One seeded trace from the workload engine — diurnal/bursty arrivals,
heavy-tailed context lengths, two tenants mixing chat sessions, RAG over a
shared Zipf document library, agent tool loops with mid-stream
cancellations — replayed against the full stack at all three entry points:

* **scheduler**: ``InferenceService.submit`` + virtual-clock stepping;
* **http**: the asyncio SSE frontend over real TCP (cancels arrive as
  DELETEs and TCP aborts; shutdown verifies the drain invariants);
* **router**: the sharded context router (sequential, cancellations as
  client-side consumption caps).

Each replay reports TTFT/TPOT p50/p95/p99, SLO attainment, eviction/
preemption/throttle (429) rates, prefix-reuse hit ratio, and per-tenant
fairness rows.  The same run scores the **quality gate**: the trace's task
mix mapped to LongBench/∞-Bench specs, the sparse path (DIPRS) scored
against the dense path (full attention) — asserted to stay within 0.95× in
every mode, so a replay-path speedup can never silently cost quality.
Headline numbers land in ``BENCH_workload_replay.json``.

``BENCH_SMOKE=1`` shrinks the trace (CI sanity run); structure assertions
(accounting closure, determinism, gate threshold) hold in both modes.
"""

from __future__ import annotations

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.sharding.router import ShardedContextRouter
from repro.workloads.engine import (
    TenantMixSpec,
    WorkloadEngineSpec,
    generate_replay_trace,
    replay_http,
    replay_router,
    replay_scheduler,
    score_quality_gate,
    tenant_specs,
)
from repro.workloads.trace import TraceSpec

EXPERIMENT = "Workload replay (trace-driven end-to-end serving + quality gate)"

SMOKE = smoke_mode()
DURATION_SECONDS = 25.0 if SMOKE else 90.0
BASE_RATE = 0.7 if SMOKE else 1.2
GATE_CONTEXT_LENGTH = 1024 if SMOKE else 2048
GATE_DECODE_STEPS = 2 if SMOKE else 4
GATE_THRESHOLD = 0.95
HTTP_TIME_SCALE = 0.004 if SMOKE else 0.01

SPEC = WorkloadEngineSpec(
    duration_seconds=DURATION_SECONDS,
    base_rate=BASE_RATE,
    diurnal_amplitude=0.6,
    diurnal_period_seconds=DURATION_SECONDS / 2,
    burstiness=0.8,
    tenants=(
        TenantMixSpec(name="finance", weight=2, rate_share=2.0,
                      chat_fraction=0.25, rag_fraction=0.5, agent_fraction=0.15),
        TenantMixSpec(name="legal", weight=1, rate_share=1.0,
                      chat_fraction=0.45, rag_fraction=0.2, agent_fraction=0.25,
                      max_queued=8),
    ),
    corpus=TraceSpec(
        num_documents=3,
        document_repeats=4 if SMOKE else 8,
        num_requests=1,
        fresh_request_fraction=0.0,
    ),
    chat_prompt_median_chars=250 if SMOKE else 500,
    chat_prompt_max_chars=1200 if SMOKE else 3000,
    cancel_fraction=0.15,
    disconnect_fraction=0.5,
    seed=2025,
)


def _model() -> TransformerModel:
    return TransformerModel(ModelConfig.tiny(seed=97))


def _service(model: TransformerModel) -> InferenceService:
    return InferenceService(model, AlayaDBConfig(tenants=tenant_specs(SPEC)))


def _sweep():
    trace = generate_replay_trace(SPEC)
    model = _model()
    reports = {
        "scheduler": replay_scheduler(trace, _service(model)),
        "http": replay_http(trace, _service(model), time_scale=HTTP_TIME_SCALE),
        "router": replay_router(trace, ShardedContextRouter(model, num_workers=2)),
    }
    gate = score_quality_gate(
        trace.kinds_present(),
        context_length=GATE_CONTEXT_LENGTH,
        decode_steps=GATE_DECODE_STEPS,
    )
    return trace, reports, gate


def test_workload_replay(benchmark):
    trace, reports, gate = run_once(benchmark, _sweep)

    for name, report in reports.items():
        assert report.num_events == trace.num_events, name
        if name == "router":
            assert report.completed + report.rejected == report.submitted, name
        else:
            assert (
                report.completed + report.cancelled + report.failed == report.submitted
            ), name
        assert report.reuse_hit_requests > 0, name
    # the scheduler replay paces on a virtual clock: cancellations are
    # deterministic, every event lands
    assert reports["scheduler"].submitted == trace.num_events
    assert reports["scheduler"].cancelled > 0
    # the quality gate is the hard floor: sparse within 0.95x of dense on
    # every task of this trace's mix, in smoke and full mode alike
    assert gate.passes(GATE_THRESHOLD), gate.to_dict()

    rows = [
        [
            name,
            r.submitted,
            r.completed,
            r.cancelled,
            r.throttled_429,
            round(r.ttft_seconds["p50"] * 1000, 2),
            round(r.ttft_seconds["p99"] * 1000, 2),
            round(r.tpot_seconds["p99"] * 1000, 2),
            f"{r.slo_attainment:.3f}",
            f"{r.reuse_hit_ratio:.2f}",
            round(r.wall_seconds, 2),
        ]
        for name, r in reports.items()
    ]
    gate_rows = [
        [task, row["kind"], round(row["sparse"], 2), round(row["dense"], 2),
         f"{row['ratio']:.4f}"]
        for task, row in gate.per_task.items()
    ]
    lines = [
        f"trace: {trace.num_events} events over {SPEC.duration_seconds:.0f}s "
        f"(kinds {trace.kind_counts()}, tenants {trace.tenant_counts()}, "
        f"digest {trace.digest()[:12]})",
        "",
        format_table(
            ["entry point", "sub", "done", "cancel", "429",
             "TTFT p50 (ms)", "TTFT p99 (ms)", "TPOT p99 (ms)",
             "SLO", "reuse", "wall (s)"],
            rows,
            title="--- one trace, three entry points ---",
        ),
        "",
        format_table(
            ["task", "kind", "sparse", "dense", "ratio"],
            gate_rows,
            title=f"--- quality gate (threshold {GATE_THRESHOLD}) ---",
        ),
        f"gate: min ratio {gate.min_ratio:.4f}, mean {gate.mean_ratio:.4f} "
        f"-> {'PASS' if gate.passes(GATE_THRESHOLD) else 'FAIL'}",
    ]
    emit(EXPERIMENT, "\n".join(lines))
    write_bench_json(
        "workload_replay",
        metrics={
            "trace": {
                "num_events": trace.num_events,
                "digest": trace.digest(),
                "kind_counts": trace.kind_counts(),
                "tenant_counts": trace.tenant_counts(),
            },
            "replays": {name: r.to_dict() for name, r in reports.items()},
            "quality_gate": gate.to_dict(),
            "quality_gate_passes": gate.passes(GATE_THRESHOLD),
        },
        config={
            "duration_seconds": SPEC.duration_seconds,
            "base_rate": SPEC.base_rate,
            "burstiness": SPEC.burstiness,
            "cancel_fraction": SPEC.cancel_fraction,
            "gate_context_length": GATE_CONTEXT_LENGTH,
            "gate_threshold": GATE_THRESHOLD,
            "http_time_scale": HTTP_TIME_SCALE,
            "seed": SPEC.seed,
        },
    )
