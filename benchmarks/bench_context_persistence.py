"""Durable context database: reload-from-disk deserialize vs rebuild.

Before this subsystem, a context coming back from the disk tier returned
index-less: its RoarGraph fine indexes were *rebuilt* from the raw keys (the
q→k kNN stage all over again) on the next sparse use.  With versioned index
serialization the reload is a deserialize — reattach the stored CSR
adjacency and vectors — and retrieval over the loaded index is bit-identical
to the index that was saved.

This harness measures what that buys on a restart:

* **populate** — a durable DB (``context_db_path``) ingests N documents
  (prefill + index build + persist);
* **restart / deserialize** — a fresh DB over the same directory recovers
  the manifest and reloads every context, indexes attached by
  deserialization;
* **restart / rebuild** — the same restart with ``persist_fine_indexes``
  off: snapshots reload but every fine index is rebuilt from the keys (the
  pre-subsystem behavior);
* **end-to-end** — a restarted ``InferenceService`` answers a question
  against a recovered document vs. a cold service that must prefill the
  whole document.

``BENCH_SMOKE=1`` shrinks the workload for CI sanity runs.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.db import DB
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel

EXPERIMENT = "Context persistence: deserialize vs rebuild"

SMOKE = smoke_mode()
DOC_REPEATS = 8 if SMOKE else 30
NUM_DOCS = 2 if SMOKE else 4
MODEL_SEED = 137


def _documents() -> list[str]:
    topics = [
        "transaction logs and crash recovery procedures",
        "vector search over long context key caches",
        "scheduler admission control and preemption",
        "index construction from projected bipartite graphs",
    ]
    return [
        f"document {i} is about {topic}. " * DOC_REPEATS
        for i, topic in enumerate(topics[:NUM_DOCS])
    ]


def _db_config(path, persist_fine_indexes=True) -> AlayaDBConfig:
    return AlayaDBConfig(
        context_db_path=str(path), persist_fine_indexes=persist_fine_indexes
    )


def _populate(model, path, persist_fine_indexes=True):
    db = DB(_db_config(path, persist_fine_indexes))
    start = time.perf_counter()
    ids = []
    for i, document in enumerate(_documents()):
        ids.append(db.prefill_and_import(model, document, context_id=f"doc-{i}").context_id)
    return db, ids, time.perf_counter() - start


def _restart_and_reload(path, ids, persist_fine_indexes=True):
    """Open a fresh DB over the directory; reload (and index) every context."""
    start = time.perf_counter()
    db = DB(_db_config(path, persist_fine_indexes))
    for context_id in ids:
        db.store_registry.ensure_resident(context_id)
    while db.build_pending():  # drain any queued fine rebuilds
        pass
    elapsed = time.perf_counter() - start
    assert all(db.get_context(cid).has_fine_indexes for cid in ids)
    return db, elapsed


def _service_config(path) -> AlayaDBConfig:
    return AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=64,
        gpu_memory_budget_bytes=1,
        max_retrieved_tokens=64,
        context_db_path=str(path),
    )


def _end_to_end(path, documents):
    """Restarted service (recovered contexts) vs cold service (full prefill)."""
    question = documents[0] + " what is this document about?"

    warm_model = TransformerModel(ModelConfig.tiny(seed=MODEL_SEED))
    warm = InferenceService(warm_model, _service_config(path))
    _, warm_record = warm.serve(question, max_new_tokens=4)

    cold_model = TransformerModel(ModelConfig.tiny(seed=MODEL_SEED))
    cold = InferenceService(cold_model, _service_config(path.parent / "empty"))
    _, cold_record = cold.serve(question, max_new_tokens=4)
    return warm, warm_record, cold_record


def _sweep(tmp_path):
    model = TransformerModel(ModelConfig.tiny(seed=MODEL_SEED))
    durable_dir = tmp_path / "durable"
    rebuild_dir = tmp_path / "rebuild"

    _, ids, populate_seconds = _populate(model, durable_dir)
    _populate(model, rebuild_dir, persist_fine_indexes=False)

    deser_db, deserialize_seconds = _restart_and_reload(durable_dir, ids)
    rebuild_db, rebuild_seconds = _restart_and_reload(
        rebuild_dir, ids, persist_fine_indexes=False
    )
    assert deser_db.store_registry.reload_deserialized_count == len(ids)
    assert rebuild_db.store_registry.reload_rebuilt_count == len(ids)

    warm_service, warm_record, cold_record = _end_to_end(durable_dir, _documents())
    return {
        "ids": ids,
        "populate_seconds": populate_seconds,
        "deserialize_seconds": deserialize_seconds,
        "rebuild_seconds": rebuild_seconds,
        "disk_kv_bytes": deser_db.store_registry.disk_kv_bytes,
        "disk_index_bytes": deser_db.store_registry.disk_index_bytes,
        "manifest_generation": deser_db.store_registry.manifest_generation,
        "warm_record": warm_record,
        "cold_record": cold_record,
        "warm_report": warm_service.memory_report(),
    }


def test_context_persistence(benchmark, tmp_path):
    out = run_once(benchmark, _sweep, tmp_path)

    speedup = out["rebuild_seconds"] / max(out["deserialize_seconds"], 1e-9)
    warm, cold = out["warm_record"], out["cold_record"]
    prefill_speedup = cold.prefill_compute_seconds / max(warm.prefill_compute_seconds, 1e-9)

    rows = [
        ["populate (prefill+index+persist)", f"{out['populate_seconds'] * 1000:.1f} ms", ""],
        ["restart reload: deserialize", f"{out['deserialize_seconds'] * 1000:.1f} ms", ""],
        ["restart reload: rebuild", f"{out['rebuild_seconds'] * 1000:.1f} ms", f"{speedup:.2f}x slower"],
        ["restart prefill (reused)", f"{warm.prefill_compute_seconds * 1000:.1f} ms", f"{warm.reused_tokens} tokens reused"],
        ["cold prefill (no database)", f"{cold.prefill_compute_seconds * 1000:.1f} ms", f"{prefill_speedup:.2f}x slower"],
        ["disk tier", f"{out['disk_kv_bytes']} B kv", f"{out['disk_index_bytes']} B index"],
    ]
    text = format_table(["phase", "time", "notes"], rows)
    emit(EXPERIMENT, text)

    write_bench_json(
        "context_persistence",
        metrics={
            "populate_seconds": out["populate_seconds"],
            "reload_deserialize_seconds": out["deserialize_seconds"],
            "reload_rebuild_seconds": out["rebuild_seconds"],
            "deserialize_speedup_vs_rebuild": speedup,
            "restart_prefill_seconds": warm.prefill_compute_seconds,
            "cold_prefill_seconds": cold.prefill_compute_seconds,
            "restart_reused_tokens": warm.reused_tokens,
            "disk_kv_bytes": out["disk_kv_bytes"],
            "disk_index_bytes": out["disk_index_bytes"],
        },
        config={
            "num_docs": NUM_DOCS,
            "doc_repeats": DOC_REPEATS,
            "model_seed": MODEL_SEED,
            "smoke": SMOKE,
        },
    )

    # correctness gates (speed is reported, not asserted, in smoke mode)
    assert warm.reused_tokens > 0, "restarted service failed to reuse the recovered context"
    assert cold.reused_tokens == 0
    assert out["warm_report"]["context_reloads_deserialized"] >= 1
    if not SMOKE:
        assert speedup > 1.0, (
            f"deserializing indexes should beat rebuilding them, got {speedup:.2f}x"
        )
