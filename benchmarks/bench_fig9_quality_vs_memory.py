"""Figure 9 — generation quality vs GPU memory under the SLO (En.MC, En.QA).

The paper varies the number of cached tokens for InfLLM and StreamingLLM and
plots quality against GPU memory consumption (model weights + resident KV);
DIPRS sits in the top-left corner: best quality at the lowest memory, while
the coarse methods need several extra GB to approach it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_series
from repro.baselines import DIPRSStrategy, InfLLMStrategy, StreamingLLMStrategy, TopKRetrievalStrategy
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.types import beta_from_alpha
from repro.simulator.cost_model import CostModel
from repro.simulator.device import GIB
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.generator import generate_workload
from repro.workloads.infinite_bench import infinite_bench_task

EXPERIMENT = "Figure 9: quality vs GPU memory"

CONTEXT_LENGTH = 4096
DECODE_STEPS = 3

# Coarse methods must keep a constant *fraction* of the context resident to
# hold their quality (their selection is block/window structured), whereas the
# fine-grained retrieval methods keep a constant *count* of tokens (Table 3:
# the required k does not grow with the context).  GPU memory is therefore
# reported at paper scale: coarse residency is scaled by the ratio between the
# task's real context length and the synthetic one, retrieval residency is not.


def _evaluate_task(task_name: str):
    spec = infinite_bench_task(task_name, context_length=CONTEXT_LENGTH, num_decode_steps=DECODE_STEPS)
    workload = generate_workload(spec)
    context = workload.context
    context.fine_indexes, _ = ContextIndexBuilder(IndexBuildConfig()).build_context(
        context.snapshot.keys, context.query_samples
    )
    beta = beta_from_alpha(0.012, spec.head_dim)
    cost = CostModel()
    scale_to_paper = spec.paper_context_length / spec.context_length

    def gpu_gib(evaluation, scale_residency: bool) -> float:
        tokens = evaluation.gpu_tokens * (scale_to_paper if scale_residency else 1.0)
        return (tokens * cost.shape.kv_bytes_per_token + cost.shape.weight_bytes) / GIB

    curves = {}
    infllm_points = []
    for blocks in (2, 4, 8, 16):
        evaluation = evaluate_strategy(
            InfLLMStrategy(block_size=128, num_retrieved_blocks=blocks, initial_tokens=64, recent_tokens=256),
            workload,
        )
        infllm_points.append((gpu_gib(evaluation, True), evaluation.quality))
    curves["InfLLM"] = infllm_points

    streaming_points = []
    for window in (256, 512, 1024, 2048):
        evaluation = evaluate_strategy(
            StreamingLLMStrategy(initial_tokens=64, recent_tokens=window), workload
        )
        streaming_points.append((gpu_gib(evaluation, True), evaluation.quality))
    curves["StreamingLLM"] = streaming_points

    top100 = evaluate_strategy(
        TopKRetrievalStrategy(k=100, initial_tokens=128, recent_tokens=512, reuse_context_indexes=True), workload
    )
    curves["Top-100"] = [(gpu_gib(top100, False), top100.quality)]

    diprs = evaluate_strategy(
        DIPRSStrategy(beta=beta, capacity_threshold=256, initial_tokens=128, recent_tokens=512, reuse_context_indexes=True),
        workload,
    )
    curves["DIPRS"] = [(gpu_gib(diprs, False), diprs.quality)]
    return curves


def _run_both_tasks():
    return {task: _evaluate_task(task) for task in ("En.MC", "En.QA")}


def test_fig9_quality_vs_memory(benchmark):
    all_curves = run_once(benchmark, _run_both_tasks)

    lines = []
    for task, curves in all_curves.items():
        lines.append(f"--- {task} (x = modelled GPU memory in GiB at paper scale, y = quality) ---")
        for method, points in curves.items():
            lines.append(
                format_series(
                    f"{method:13s}",
                    [round(x, 2) for x, _ in points],
                    [round(y, 1) for _, y in points],
                )
            )
    emit(EXPERIMENT, "\n".join(lines))

    for task, curves in all_curves.items():
        diprs_memory, diprs_quality = curves["DIPRS"][0]
        # DIPRS uses the least GPU memory of every configuration tried
        for method, points in curves.items():
            if method == "DIPRS":
                continue
            for memory, _ in points:
                assert diprs_memory <= memory + 1e-6, (task, method)
        # any coarse configuration that approaches DIPRS's quality needs
        # substantially more GPU memory (the paper's top-left-corner claim)
        for method in ("InfLLM", "StreamingLLM"):
            for memory, quality in curves[method]:
                if quality >= diprs_quality - 2.0:
                    assert memory >= diprs_memory + 1.0, (task, method)
        # and at DIPRS's memory budget no coarse method comes close
        cheapest_coarse_quality = max(
            quality for points in (curves["InfLLM"], curves["StreamingLLM"]) for memory, quality in [points[0]]
        )
        assert diprs_quality > cheapest_coarse_quality + 10.0, task
