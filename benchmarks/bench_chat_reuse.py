"""Multi-turn chat with cross-turn KV reuse vs full-transcript resubmission.

The paper's headline reuse mechanism (the context store's token-trie prefix
match) only pays off across *turns of the same dialogue* if the serving API
carries a conversation forward.  This harness measures what the
``ChatSession`` redesign buys:

* **chat** — every turn goes through ``service.chat()``: the finished turn's
  prompt + generated KV is re-stored under the conversation's context id, so
  turn *k+1* prefills only the new user prompt (plus the one token whose KV
  was never computed);
* **no-reuse baseline** — the batch-era client: every turn resubmits the
  full transcript to a service with no stored contexts, re-prefilling
  everything.

Decode runs full attention in both modes (``short_context_threshold`` above
any transcript length), so the generated tokens must be **identical** — the
reuse path changes latency and work, never output.  Reported per turn:
prompt length, reused tokens, reuse ratio, and prefill compute seconds (the
TTFT component reuse attacks).

The harness also exercises the two remaining acceptance points of the API
redesign: ``handle.cancel()`` returns the admission reservation to the
budget (observable via ``memory_report()``), and a streamed ``tokens()``
sequence equals ``result()``'s.

``BENCH_SMOKE=1`` shrinks the workload for CI sanity runs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once, smoke_mode
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel

EXPERIMENT = "Chat cross-turn context reuse"

SMOKE = smoke_mode()
DOCUMENT_REPEATS = 8 if SMOKE else 30
NUM_FOLLOW_UPS = 2 if SMOKE else 5
TOKENS_PER_TURN = 3 if SMOKE else 6


def _config() -> AlayaDBConfig:
    return AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        # decode via full attention so reuse cannot change the output tokens
        short_context_threshold=1 << 20,
    )


def _prompts() -> list[str]:
    document = "the shared case file describes a long-running incident. " * DOCUMENT_REPEATS
    follow_ups = [
        "what happened first?",
        "who reported it?",
        "what was the impact?",
        "how was it mitigated?",
        "what should we do next time?",
    ]
    return ["please read this report: " + document] + follow_ups[:NUM_FOLLOW_UPS]


def _run_chat(model):
    service = InferenceService(model, _config())
    chat = service.chat(max_new_tokens=TOKENS_PER_TURN)
    turns = [chat.ask(prompt) for prompt in _prompts()]
    return service, turns


def _run_baseline(model, chat_turns):
    """Resubmit each chat turn's exact full prompt to a reuse-free service."""
    service = InferenceService(model, _config())
    outcomes = []
    for turn in chat_turns:
        outcomes.append(service.serve(turn.prompt_tokens, max_new_tokens=TOKENS_PER_TURN))
    return outcomes


def _check_cancel_and_streaming(model):
    """handle.cancel() frees the admission budget; tokens() == result()."""
    config = AlayaDBConfig(
        window_initial_tokens=8,
        window_last_tokens=16,
        short_context_threshold=1 << 20,
        scheduler_gpu_budget_bytes=1 << 30,
    )
    service = InferenceService(model, config)
    victim = service.submit("a request that will be cancelled " * 8, max_new_tokens=64)
    service.step()
    committed_mid_flight = service.memory_report()["admission_committed_bytes"]
    cancelled = victim.cancel()
    committed_after = service.memory_report()["admission_committed_bytes"]

    streamer = service.submit("a request that streams " * 4, max_new_tokens=4)
    streamed = list(streamer.tokens())
    final = streamer.result()[0].generated_tokens
    return {
        "committed_mid_flight": committed_mid_flight,
        "cancelled": cancelled,
        "committed_after": committed_after,
        "stream_matches_result": streamed == final,
        "streamed": len(streamed),
    }


def _sweep():
    model = TransformerModel(ModelConfig.tiny(seed=131))
    chat_service, chat_turns = _run_chat(model)
    baseline = _run_baseline(model, chat_turns)
    side = _check_cancel_and_streaming(model)
    return chat_service, chat_turns, baseline, side


def test_chat_reuse(benchmark):
    chat_service, chat_turns, baseline, side = run_once(benchmark, _sweep)

    rows = []
    for i, (turn, (base_result, base_record)) in enumerate(zip(chat_turns, baseline), start=1):
        speedup = base_record.prefill_compute_seconds / max(
            turn.record.prefill_compute_seconds, 1e-9
        )
        rows.append(
            [
                i,
                turn.record.prompt_tokens,
                turn.reused_tokens,
                round(turn.reuse_ratio, 3),
                round(turn.record.prefill_compute_seconds * 1000, 2),
                round(base_record.prefill_compute_seconds * 1000, 2),
                round(speedup, 2),
                turn.result.generated_tokens == base_result.generated_tokens,
            ]
        )

    chat_reuse = float(np.mean([t.reuse_ratio for t in chat_turns]))
    base_reuse = float(np.mean([r.reuse_ratio for _, r in baseline]))
    chat_prefill = float(np.mean([t.record.prefill_compute_seconds for t in chat_turns]))
    base_prefill = float(np.mean([r.prefill_compute_seconds for _, r in baseline]))
    # turn 1 has nothing to reuse in either mode; the per-turn win is over
    # the follow-ups, where the transcript's KV is already stored
    follow_chat = float(np.mean([t.record.prefill_compute_seconds for t in chat_turns[1:]]))
    follow_base = float(np.mean([r.prefill_compute_seconds for _, r in baseline[1:]]))

    lines = [
        format_table(
            ["turn", "prompt", "reused", "reuse", "chat prefill (ms)", "resubmit prefill (ms)", "speedup", "identical"],
            rows,
            title=f"--- {len(chat_turns)} chat turns, ChatSession vs full-transcript resubmit ---",
        ),
        f"mean reuse_ratio: chat {chat_reuse:.3f} vs resubmit {base_reuse:.3f}",
        f"mean prefill TTFT: chat {chat_prefill * 1000:.2f} ms vs resubmit {base_prefill * 1000:.2f} ms",
        f"follow-up turns only: chat {follow_chat * 1000:.2f} ms vs resubmit {follow_base * 1000:.2f} ms "
        f"({follow_base / max(follow_chat, 1e-9):.1f}x)",
        "",
        "--- handle.cancel() and streaming ---",
        f"admission bytes mid-flight {side['committed_mid_flight']}, after cancel {side['committed_after']}",
        f"streamed {side['streamed']} tokens; stream == result: {side['stream_matches_result']}",
    ]
    emit(EXPERIMENT, "\n".join(lines))

    # identical outputs: reuse must never change what is generated
    for turn, (base_result, _) in zip(chat_turns, baseline):
        assert turn.result.generated_tokens == base_result.generated_tokens
    # the chat reuses strictly more of the prompt than resubmission (which
    # reuses nothing: its service never stores a context)
    assert base_reuse == 0.0
    assert chat_reuse > base_reuse
    assert all(turn.reused_tokens > 0 for turn in chat_turns[1:])
    # cancellation returned the whole reservation to the budget
    assert side["cancelled"]
    assert side["committed_mid_flight"] > 0
    assert side["committed_after"] == 0
    assert side["stream_matches_result"]
    if not SMOKE:
        # reusing the stored transcript beats re-prefilling it, per turn and
        # on average (wall-clock assertions only at full size)
        assert chat_prefill < base_prefill
        assert follow_chat < follow_base
