"""Table 5 — generation quality of sparse-attention methods on ∞-Bench.

The paper compares Full Attention, InfLLM, StreamingLLM, Top-100, Top-2000
and DIPRS on 8 ∞-Bench tasks under the TPOT SLO (0.24 s).  The reproduction
evaluates the same six methods on the synthetic task equivalents and reports

* the task quality score (evidence retrieval / recovery, 0-100),
* whether the method meets the SLO at the *paper-scale* context length
  (modelled with the Llama-3-8B cost model), and
* how many tokens per head the method retrieved.

Expected shape (matching the paper): StreamingLLM collapses on retrieval
tasks, InfLLM is mid-pack, Top-100 loses quality on token-hungry tasks,
Top-2000 matches DIPRS quality but violates the SLO, and DIPRS gets the best
average quality among SLO-compliant sparse methods while full attention
violates the SLO on the longest tasks.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.baselines import (
    DIPRSStrategy,
    FullAttentionStrategy,
    InfLLMStrategy,
    StreamingLLMStrategy,
    TopKRetrievalStrategy,
)
from repro.baselines.base import SelectionOutcome, SelectionStrategy
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.types import beta_from_alpha
from repro.simulator.cost_model import CostModel
from repro.simulator.slo import SLO
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.infinite_bench import infinite_bench_names, infinite_bench_task
from repro.workloads.generator import generate_workload

EXPERIMENT = "Table 5: generation quality on Infinity-Bench"

CONTEXT_LENGTH = 6144
DECODE_STEPS = 3

# The paper's method configurations are defined for ~44K-192K token contexts
# (window [128+512], InfLLM [128+4K]+4K, StreamingLLM [128]+8K).  The synthetic
# contexts are ~16x shorter, so window/block budgets that are *fractions* of
# the context (InfLLM's cached blocks, StreamingLLM's recent window) are scaled
# by the same factor, while budgets the paper argues are context-independent
# (the retrieval k, the [128+512] retrieval window) are kept absolute.
PAPER_REFERENCE_CONTEXT = 100_000
SCALE = CONTEXT_LENGTH / PAPER_REFERENCE_CONTEXT
WINDOW_INITIAL = 128
WINDOW_RECENT = 512


class _ExactTopK(SelectionStrategy):
    """Exact top-k over the stored keys (used for the k=2000 configuration,
    where any sensible executor scans instead of walking a graph)."""

    def __init__(self, k: int):
        self.k = k
        self.name = f"top{k}"
        self._keys = None
        self._group = 1

    def prepare(self, context, num_query_heads):
        self._keys = context.snapshot.keys
        self._group = num_query_heads // context.snapshot.keys[0].shape[0]

    def select(self, layer, query_head, query, context_length):
        keys = self._keys[layer][query_head // self._group]
        scores = keys @ query
        k = min(self.k, keys.shape[0])
        top = np.argpartition(-scores, k - 1)[:k]
        return SelectionOutcome(positions=top, num_distance_computations=keys.shape[0])

    def resident_positions(self, context_length):
        initial = np.arange(0, min(WINDOW_INITIAL, context_length), dtype=np.int64)
        recent = np.arange(max(0, context_length - WINDOW_RECENT), context_length, dtype=np.int64)
        return np.unique(np.concatenate([initial, recent]))

    def gpu_token_equivalent(self, context_length):
        return int(self.resident_positions(context_length).shape[0]) + self.k


def _methods(head_dim: int):
    beta = beta_from_alpha(0.012, head_dim)
    infllm_retrieved_blocks = max(2, int(round(4096 * SCALE / 128)))
    infllm_recent = max(64, int(round(4096 * SCALE)))
    streaming_recent = max(128, int(round(8192 * SCALE)))
    return {
        "Full Attention": FullAttentionStrategy(),
        "InfLLM": InfLLMStrategy(
            block_size=128,
            num_retrieved_blocks=infllm_retrieved_blocks,
            initial_tokens=WINDOW_INITIAL,
            recent_tokens=infllm_recent,
        ),
        "StreamingLLM": StreamingLLMStrategy(initial_tokens=WINDOW_INITIAL, recent_tokens=streaming_recent),
        "Top100": TopKRetrievalStrategy(
            k=100, initial_tokens=WINDOW_INITIAL, recent_tokens=WINDOW_RECENT, reuse_context_indexes=True
        ),
        "Top2000": _ExactTopK(k=2000),
        "DIPRS": DIPRSStrategy(
            beta=beta,
            capacity_threshold=256,
            initial_tokens=WINDOW_INITIAL,
            recent_tokens=WINDOW_RECENT,
            reuse_context_indexes=True,
        ),
    }


def _evaluate_all_tasks():
    cost = CostModel()
    slo = SLO()
    builder = ContextIndexBuilder(IndexBuildConfig())
    results: dict[str, dict[str, dict]] = {}
    for task_name in infinite_bench_names():
        spec = infinite_bench_task(task_name, context_length=CONTEXT_LENGTH, num_decode_steps=DECODE_STEPS)
        workload = generate_workload(spec)
        # build the fine-grained indexes once and share them across methods
        context = workload.context
        context.fine_indexes, _ = builder.build_context(
            context.snapshot.keys, context.query_samples
        )
        results[task_name] = {}
        for method_name, strategy in _methods(spec.head_dim).items():
            evaluation = evaluate_strategy(strategy, workload)
            is_full = method_name == "Full Attention"
            if is_full:
                tpot = evaluation.modeled_full_tpot_seconds(cost, spec.paper_context_length)
            elif method_name == "Top2000":
                # modelled as a graph search for 2000 results (ef ~ 4k), the
                # paper's configuration; the scan dc measured here would be
                # even slower at paper scale.
                tpot = cost.sparse_decode_seconds(
                    num_selected_tokens=2000 + evaluation.resident_tokens,
                    num_distance_computations=4 * 2000,
                )
            else:
                tpot = evaluation.modeled_tpot_seconds(cost, spec.paper_context_length)
            results[task_name][method_name] = {
                "quality": evaluation.quality,
                "selected": evaluation.mean_selected_per_head,
                "tpot": tpot,
                "meets_slo": slo.check_tpot(tpot),
            }
    return results


def test_table5_quality(benchmark):
    results = run_once(benchmark, _evaluate_all_tasks)

    task_names = infinite_bench_names()
    method_names = ["Full Attention", "InfLLM", "StreamingLLM", "Top100", "Top2000", "DIPRS"]
    rows = []
    for method_name in method_names:
        qualities = [results[t][method_name]["quality"] for t in task_names]
        meets = all(results[t][method_name]["meets_slo"] for t in task_names)
        tpot = float(np.max([results[t][method_name]["tpot"] for t in task_names]))
        selected = float(np.mean([results[t][method_name]["selected"] for t in task_names]))
        rows.append(
            [method_name, "yes" if meets else "NO", round(tpot, 3), round(selected, 1)]
            + [round(q, 1) for q in qualities]
            + [round(float(np.mean(qualities)), 1)]
        )
    table = format_table(
        ["method", "SLO", "max TPOT (s)", "sel/head"] + task_names + ["Avg."],
        rows,
        title=(
            "Paper Table 5 shape: DIPRS meets the SLO with the best average quality among sparse methods; "
            "Top2000 matches quality but violates the SLO; Full Attention violates the SLO on long tasks; "
            "StreamingLLM collapses on retrieval tasks."
        ),
    )
    emit(EXPERIMENT, table)

    averages = {
        method: float(np.mean([results[t][method]["quality"] for t in task_names])) for method in method_names
    }
    slo_ok = {
        method: all(results[t][method]["meets_slo"] for t in task_names) for method in method_names
    }
    retrieval_tasks = ["Retr.KV", "Retr.P", "Retr.N"]

    # --- paper-shape assertions -------------------------------------------------
    # DIPRS: SLO met, best average among SLO-compliant sparse methods
    assert slo_ok["DIPRS"]
    assert averages["DIPRS"] >= averages["Top100"] - 2.0
    assert averages["DIPRS"] > averages["InfLLM"]
    assert averages["DIPRS"] > averages["StreamingLLM"] + 20
    # Top2000 reaches DIPRS-level quality but violates the SLO
    assert not slo_ok["Top2000"]
    assert averages["Top2000"] >= averages["Top100"]
    # Full attention has the best quality but violates the SLO at paper scale
    assert not slo_ok["Full Attention"]
    assert averages["Full Attention"] >= max(v for k, v in averages.items() if k != "Full Attention") - 1e-6
    # StreamingLLM fails the retrieval tasks (its window never reaches the evidence)
    streaming_retrieval = float(np.mean([results[t]["StreamingLLM"]["quality"] for t in retrieval_tasks]))
    assert streaming_retrieval < 40.0
    assert results["Retr.KV"]["StreamingLLM"]["quality"] < 10.0
    # DIPRS retrieves far fewer tokens than Top2000
    diprs_selected = float(np.mean([results[t]["DIPRS"]["selected"] for t in task_names]))
    assert diprs_selected < 2000 / 3
