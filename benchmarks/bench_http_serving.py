"""HTTP serving frontend — streams/sec, TTFT overhead, and tenant fairness.

Three panels over the asyncio gateway (``repro.server``):

* **throughput**: N concurrent SSE streams over real TCP vs the same N
  requests served in-process through the scheduler (streams/sec and
  client-perceived TTFT — submit to first token — under load).  The frontend
  adds HTTP parsing, SSE framing, and event-loop scheduling on top of the
  identical model work, so the delta *is* the frontend overhead;
* **fairness**: two tenants with DRR weights 3:1 flood a saturated server;
  mid-run served-token shares must track the weights within 20%, and the
  throttled tenant's overflow is refused with 429 + ``Retry-After`` +
  ``X-Queue-Position`` rather than queued without bound;
* the headline numbers land in ``BENCH_http_serving.json``.

``BENCH_SMOKE=1`` shrinks the client counts and skips the perf-ratio
assertions (CI sanity run); the fairness *shape* (429s carry queue
positions, shares track weights) is asserted in both modes.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.scheduler import TenantSpec
from repro.server import AlayaDBServer, ServerClient

EXPERIMENT = "HTTP serving (streams/sec, TTFT overhead, tenant fairness)"

SMOKE = smoke_mode()
CONCURRENT_CLIENTS = 8 if SMOKE else 64
MAX_NEW_TOKENS = 4
FAIRNESS_STREAMS = 12 if SMOKE else 40  # per tenant
FAIRNESS_MAX_NEW = 4
BRONZE_MAX_QUEUED = 4 if SMOKE else 10
# the share measurement is a steady-state window: snapshot the per-tenant
# served-token counters after a warmup (the initial slot-fill and the first
# DRR bursts are transient) and again before either tenant's backlog can run
# dry, and compare the *deltas*
WARMUP_COMPLETIONS = 4 if SMOKE else 12
MEASURE_COMPLETIONS = 14 if SMOKE else 44

BASE_CONFIG = dict(
    window_initial_tokens=8,
    window_last_tokens=16,
    short_context_threshold=1 << 20,  # tiny contexts: decode dense
    max_inflight_requests=4,
)


def _model() -> TransformerModel:
    return TransformerModel(ModelConfig.tiny(seed=97))


def _prompts(count: int) -> list[str]:
    return [f"benchmark prompt number {i} with some shared phrasing" for i in range(count)]


# ----------------------------------------------------------------------
# panel 1: throughput + client-perceived TTFT, in-process vs HTTP
# ----------------------------------------------------------------------
def _serve_inprocess(prompts: list[str]) -> dict:
    """All prompts submitted up front, one step loop; TTFT is submit → first
    token observed (the same client-perceived quantity the HTTP panel times)."""
    service = InferenceService(_model(), AlayaDBConfig(**BASE_CONFIG))
    start = time.perf_counter()
    handles = [service.submit(p, max_new_tokens=MAX_NEW_TOKENS) for p in prompts]
    first_token: dict[int, float] = {}
    while service.scheduler.has_work:
        service.step()
        now = time.perf_counter() - start
        for handle in handles:
            rid = handle.request_id
            if rid not in first_token and service.generated_tokens(rid):
                first_token[rid] = now
    wall = time.perf_counter() - start
    generated = sum(len(service.generated_tokens(h.request_id)) for h in handles)
    return {
        "wall_seconds": wall,
        "streams_per_second": len(prompts) / wall,
        "tokens_per_second": generated / wall,
        "mean_ttft_seconds": sum(first_token.values()) / len(first_token),
    }


def _serve_http(prompts: list[str]) -> dict:
    async def scenario():
        service = InferenceService(_model(), AlayaDBConfig(http_port=0, **BASE_CONFIG))
        server = AlayaDBServer(service)
        await server.start()
        client = ServerClient(*server.address)
        start = time.perf_counter()

        async def one(prompt: str):
            stream = await client.stream_completion(prompt=prompt, max_new_tokens=MAX_NEW_TOKENS)
            assert stream.status == 200
            ttft = None
            tokens = 0
            async for event in stream.events():
                if "token_id" in event:
                    if ttft is None:
                        ttft = time.perf_counter() - start
                    tokens += 1
            return ttft, tokens

        results = await asyncio.gather(*(one(p) for p in prompts))
        wall = time.perf_counter() - start
        await server.shutdown()
        generated = sum(tokens for _, tokens in results)
        ttfts = [ttft for ttft, _ in results if ttft is not None]
        return {
            "wall_seconds": wall,
            "streams_per_second": len(prompts) / wall,
            "tokens_per_second": generated / wall,
            "mean_ttft_seconds": sum(ttfts) / len(ttfts),
        }

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# panel 2: weighted fairness + backpressure under saturation
# ----------------------------------------------------------------------
def _fairness() -> dict:
    async def scenario():
        config = AlayaDBConfig(
            http_port=0,
            tenants=(
                TenantSpec(name="gold", weight=3),
                TenantSpec(name="bronze", weight=1, max_queued=BRONZE_MAX_QUEUED),
            ),
            tenant_quantum_tokens=64,
            **BASE_CONFIG,
        )
        service = InferenceService(_model(), config)
        server = AlayaDBServer(service)
        await server.start()
        client = ServerClient(*server.address)
        throttled = {"count": 0, "with_position": 0}
        midrun = {}

        async def flood(tenant: str, index: int):
            """One client: stream a completion, retrying on 429 backpressure
            (which keeps the throttled tenant's backlog saturated — the
            regime the 3:1 share guarantee is about)."""
            for _attempt in range(200):
                stream, events = await client.collect_stream(
                    prompt=f"{tenant} request {index} needs tokens",
                    max_new_tokens=FAIRNESS_MAX_NEW,
                    tenant=tenant,
                )
                if stream.status != 429:
                    return stream.status
                throttled["count"] += 1
                if int(stream.headers.get("x-queue-position", 0)) > 0 and (
                    "retry-after" in stream.headers
                ):
                    throttled["with_position"] += 1
                await asyncio.sleep(0.005)
            return 429

        async def monitor():
            """Measure the steady-state served-token shares: snapshot the
            per-tenant counters after warmup and again while both tenants
            still have backlog; the deltas are the saturated-regime shares
            the 3:1 guarantee is about."""
            snapshots = []
            targets = iter((WARMUP_COMPLETIONS, MEASURE_COMPLETIONS))
            target = next(targets)
            while True:
                stats = await client.stats()
                rows = stats["memory"]["tenants"]
                done = rows["gold"]["completed"] + rows["bronze"]["completed"]
                if done >= target:
                    snapshots.append(
                        (rows["gold"]["tokens_served"], rows["bronze"]["tokens_served"])
                    )
                    target = next(targets, None)
                    if target is None:
                        (gold_a, bronze_a), (gold_b, bronze_b) = snapshots
                        midrun.update(
                            gold_tokens=gold_b - gold_a,
                            bronze_tokens=bronze_b - bronze_a,
                        )
                        return
                await asyncio.sleep(0.002)

        monitor_task = asyncio.create_task(monitor())
        statuses = await asyncio.gather(
            *(
                flood(tenant, i)
                for i in range(FAIRNESS_STREAMS)
                for tenant in ("gold", "bronze")
            )
        )
        await monitor_task
        rows = (await client.stats())["memory"]["tenants"]
        await server.shutdown()
        return {
            "gold_tokens_midrun": midrun["gold_tokens"],
            "bronze_tokens_midrun": midrun["bronze_tokens"],
            "midrun_ratio": midrun["gold_tokens"] / max(midrun["bronze_tokens"], 1),
            "throttled_429": throttled["count"],
            "throttled_with_queue_position": throttled["with_position"],
            "gold_completed": rows["gold"]["completed"],
            "bronze_completed": rows["bronze"]["completed"],
            "bronze_throttled_counter": rows["bronze"]["throttled_429"],
            "served_200": sum(1 for s in statuses if s == 200),
        }

    return asyncio.run(scenario())


def _sweep():
    prompts = _prompts(CONCURRENT_CLIENTS)
    inprocess = _serve_inprocess(prompts)
    http = _serve_http(prompts)
    fairness = _fairness()
    return inprocess, http, fairness


def test_http_serving(benchmark):
    inprocess, http, fairness = run_once(benchmark, _sweep)

    ttft_overhead = http["mean_ttft_seconds"] - inprocess["mean_ttft_seconds"]
    rows = [
        [
            name,
            round(r["wall_seconds"], 3),
            round(r["streams_per_second"], 1),
            round(r["tokens_per_second"], 1),
            round(r["mean_ttft_seconds"] * 1000, 1),
        ]
        for name, r in (("in-process", inprocess), ("http/sse", http))
    ]
    lines = [
        format_table(
            ["mode", "wall (s)", "streams/s", "tok/s", "mean TTFT (ms)"],
            rows,
            title=f"--- {CONCURRENT_CLIENTS} concurrent streaming clients ---",
        ),
        "",
        f"frontend TTFT overhead: {ttft_overhead * 1000:.1f} ms "
        f"({http['mean_ttft_seconds'] / max(inprocess['mean_ttft_seconds'], 1e-9):.2f}x)",
        "",
        "--- tenant fairness (gold weight 3 vs bronze weight 1, saturated) ---",
        f"steady-state served tokens gold/bronze: {fairness['gold_tokens_midrun']}/"
        f"{fairness['bronze_tokens_midrun']} = {fairness['midrun_ratio']:.2f} "
        f"(target 3.0{'; smoke runs are too short to sample steadily' if SMOKE else ''})",
        f"bronze submissions throttled with 429: {fairness['throttled_429']} "
        f"(all carrying Retry-After + X-Queue-Position: "
        f"{fairness['throttled_with_queue_position'] == fairness['throttled_429']})",
        f"completed gold/bronze: {fairness['gold_completed']}/{fairness['bronze_completed']}",
    ]
    emit(EXPERIMENT, "\n".join(lines))
    write_bench_json(
        "http_serving",
        metrics={
            "inprocess": inprocess,
            "http": http,
            "ttft_overhead_seconds": ttft_overhead,
            "fairness": fairness,
        },
        config={
            "concurrent_clients": CONCURRENT_CLIENTS,
            "max_new_tokens": MAX_NEW_TOKENS,
            "fairness_streams_per_tenant": FAIRNESS_STREAMS,
            "weights": {"gold": 3, "bronze": 1},
            "bronze_max_queued": BRONZE_MAX_QUEUED,
        },
    )

    # the starved tenant was backpressured, not silently queued — and every
    # 429 carried the retry hint and the queue position it was refused at
    assert fairness["throttled_429"] > 0
    assert fairness["throttled_with_queue_position"] == fairness["throttled_429"]
    # with retries, every client's stream was eventually served in full
    assert fairness["served_200"] == 2 * FAIRNESS_STREAMS
    if not SMOKE:
        # under saturation the DRR shares track the 3:1 weights within 20%
        assert fairness["midrun_ratio"] == pytest.approx(3.0, rel=0.2)
        # the network frontend serves a comparable stream rate to in-process
        # (same model work; parsing + framing + event-loop overhead only)
        assert http["streams_per_second"] > 0.3 * inprocess["streams_per_second"]
