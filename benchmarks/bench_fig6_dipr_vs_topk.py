"""Figure 6 — DIPR reaches higher accuracy with fewer retrieved tokens.

The paper sweeps the fixed k of a top-k query and the beta of a DIPR query on
the Passage Retrieval and LCC tasks and plots accuracy against the number of
retrieved critical tokens: the DIPR curve sits above the top-k curve.  The
reproduction performs the same sweep with exact query execution (so the
comparison isolates the *query semantics*, not index recall) on the two
synthetic task equivalents.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_series
from repro.workloads.evaluation import evaluate_strategy
from repro.workloads.generator import generate_workload
from repro.workloads.longbench import LONGBENCH_TASKS
from repro.baselines.base import SelectionOutcome, SelectionStrategy

EXPERIMENT = "Figure 6: DIPR vs top-k accuracy per retrieved tokens"


class _ExactTopK(SelectionStrategy):
    """Exact fixed top-k selection (no index error)."""

    def __init__(self, k: int):
        self.k = k
        self.name = f"top{k}"
        self._keys = None
        self._group = 1

    def prepare(self, context, num_query_heads):
        self._keys = context.snapshot.keys
        self._group = num_query_heads // context.snapshot.keys[0].shape[0]

    def select(self, layer, query_head, query, context_length):
        keys = self._keys[layer][query_head // self._group]
        scores = keys @ query
        top = np.argsort(-scores)[: self.k]
        return SelectionOutcome(positions=top, num_distance_computations=keys.shape[0])

    def resident_positions(self, context_length):
        return np.empty(0, dtype=np.int64)

    def gpu_token_equivalent(self, context_length):
        return self.k


class _ExactDIPR(SelectionStrategy):
    """Exact DIPR selection (no index error)."""

    def __init__(self, beta: float):
        self.beta = beta
        self.name = f"dipr{beta:.0f}"
        self._keys = None
        self._group = 1

    def prepare(self, context, num_query_heads):
        self._keys = context.snapshot.keys
        self._group = num_query_heads // context.snapshot.keys[0].shape[0]

    def select(self, layer, query_head, query, context_length):
        keys = self._keys[layer][query_head // self._group]
        scores = keys @ query
        selected = np.flatnonzero(scores >= scores.max() - self.beta)
        return SelectionOutcome(positions=selected, num_distance_computations=keys.shape[0])

    def resident_positions(self, context_length):
        return np.empty(0, dtype=np.int64)

    def gpu_token_equivalent(self, context_length):
        return 0


def _sweep(task_name: str, k_values, beta_values):
    workload = generate_workload(LONGBENCH_TASKS[task_name].spec)
    topk_curve = []
    for k in k_values:
        result = evaluate_strategy(_ExactTopK(k), workload, include_local_window=False)
        topk_curve.append((result.mean_selected_per_head, result.quality))
    dipr_curve = []
    for beta in beta_values:
        result = evaluate_strategy(_ExactDIPR(beta), workload, include_local_window=False)
        dipr_curve.append((result.mean_selected_per_head, result.quality))
    return topk_curve, dipr_curve


def _run_sweeps():
    return {
        "PassageR": _sweep("PassageR", k_values=[25, 50, 100, 150, 250], beta_values=[8, 14, 20, 26, 32]),
        "LCC": _sweep("LCC", k_values=[10, 25, 40, 55, 70], beta_values=[8, 14, 20, 26, 32]),
    }


def _area_under_curve(curve):
    """Mean quality over the sweep (a scalar proxy for 'curve sits higher')."""
    return float(np.mean([quality for _, quality in curve]))


def test_fig6_dipr_vs_topk(benchmark):
    sweeps = run_once(benchmark, _run_sweeps)

    lines = []
    for task_name, (topk_curve, dipr_curve) in sweeps.items():
        lines.append(f"--- {task_name} (x = mean retrieved tokens per head, y = task accuracy) ---")
        lines.append(format_series("Top-k ", [round(x, 1) for x, _ in topk_curve], [round(y, 1) for _, y in topk_curve]))
        lines.append(format_series("DIPR  ", [round(x, 1) for x, _ in dipr_curve], [round(y, 1) for _, y in dipr_curve]))
    emit(EXPERIMENT, "\n".join(lines))

    for task_name, (topk_curve, dipr_curve) in sweeps.items():
        # the DIPR curve dominates: equal-or-better accuracy for the tokens it retrieves
        assert _area_under_curve(dipr_curve) >= _area_under_curve(topk_curve) - 1.0, task_name
        # and the best DIPR point needs fewer tokens than the best top-k point
        best_topk = max(topk_curve, key=lambda xy: (xy[1], -xy[0]))
        best_dipr = max(dipr_curve, key=lambda xy: (xy[1], -xy[0]))
        assert best_dipr[1] >= best_topk[1] - 1.0, task_name
