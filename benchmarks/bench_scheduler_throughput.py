"""Scheduler throughput — scheduled concurrent serving vs sequential loops.

The paper's deployment story (Section 8) is a Model-as-a-Service provider
serving many concurrent requests over a library of stored contexts.  This
harness compares two ways of serving the same workload end to end (document
ingest + request serving):

* **sequential/eager** — the seed's serving style: every document's fine
  indexes are built eagerly at ingest, then requests run one at a time
  through ``serve()``;
* **scheduled/lazy** — the serving stack of the scheduler refactor: ingest
  defers fine-index construction (``lazy_index_build``), requests are
  submitted together and the step-driven scheduler interleaves chunked
  prefill and decode across up to 4 in-flight sessions; only the documents
  requests actually touch with sparse decode ever pay for index builds.

A second panel exercises the memory-governed context store: with a byte
budget smaller than the total stored KV, cold contexts spill to disk and
prefix hits transparently reload them — while the SLO report stays green.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, run_once, smoke_mode
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel

EXPERIMENT = "Scheduler throughput (scheduled concurrent serving vs sequential)"

SMOKE = smoke_mode()  # BENCH_SMOKE=1: shrink the library for a quick CI run
NUM_DOCUMENTS = 4 if SMOKE else 8
QUERIED_DOCUMENTS = (0, 1)  # the rest of the library is ingested but never queried
NUM_REQUESTS = 4 if SMOKE else 8
MAX_NEW_TOKENS = 2 if SMOKE else 3

BASE_CONFIG = dict(
    window_initial_tokens=8,
    window_last_tokens=16,
    short_context_threshold=64,
    gpu_memory_budget_bytes=1,  # forces the DIPR sparse-decode path
    max_retrieved_tokens=64,
)


def _library() -> dict[str, str]:
    return {
        f"doc-{i}": f"library document number {i} holding recurring analytical content. " * 22
        for i in range(NUM_DOCUMENTS)
    }


def _prompts(documents: dict[str, str]) -> list[str]:
    return [
        documents[f"doc-{QUERIED_DOCUMENTS[i % len(QUERIED_DOCUMENTS)]}"] + f" question {i}?"
        for i in range(NUM_REQUESTS)
    ]


def _run_sequential(model, documents, prompts):
    service = InferenceService(model, AlayaDBConfig(**BASE_CONFIG))
    start = time.perf_counter()
    for context_id, document in documents.items():
        service.ingest(document, context_id=context_id)
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for prompt in prompts:
        service.serve(prompt, max_new_tokens=MAX_NEW_TOKENS)
    serve_seconds = time.perf_counter() - start
    return service, ingest_seconds, serve_seconds, 1


def _run_scheduled(model, documents, prompts):
    config = AlayaDBConfig(
        lazy_index_build=True,
        max_inflight_requests=4,
        prefill_chunk_tokens=256,
        **BASE_CONFIG,
    )
    service = InferenceService(model, config)
    start = time.perf_counter()
    for context_id, document in documents.items():
        service.ingest(document, context_id=context_id)
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for prompt in prompts:
        service.submit(prompt, max_new_tokens=MAX_NEW_TOKENS)
    peak_inflight = 0
    while service.scheduler.has_work:
        service.scheduler.step()
        peak_inflight = max(peak_inflight, service.scheduler.num_inflight)
    serve_seconds = time.perf_counter() - start
    return service, ingest_seconds, serve_seconds, peak_inflight


def _run_budgeted(model, documents, prompts, tmp_path):
    """Scheduled serving under memory pressure: budget < total stored KV."""
    probe = InferenceService(model, AlayaDBConfig(**BASE_CONFIG))
    probe.ingest(documents["doc-0"], context_id="probe")
    per_doc = probe.db.get_context("probe").kv_bytes
    config = AlayaDBConfig(
        lazy_index_build=True,
        max_inflight_requests=4,
        context_store_budget_bytes=int(per_doc * (NUM_DOCUMENTS / 2)),
        **BASE_CONFIG,
    )
    service = InferenceService(model, config, storage_dir=tmp_path)
    for context_id, document in documents.items():
        service.ingest(document, context_id=context_id)
    for prompt in prompts:
        service.submit(prompt, max_new_tokens=MAX_NEW_TOKENS)
    service.drain()
    return service


def _sweep(tmp_path):
    model = TransformerModel(ModelConfig.tiny(seed=97))
    documents = _library()
    prompts = _prompts(documents)
    results = {}
    for name, runner in (("sequential/eager", _run_sequential), ("scheduled/lazy", _run_scheduled)):
        service, ingest_seconds, serve_seconds, peak_inflight = runner(model, documents, prompts)
        generated = service.stats.total_generated_tokens
        total = ingest_seconds + serve_seconds
        results[name] = {
            "ingest_seconds": ingest_seconds,
            "serve_seconds": serve_seconds,
            "total_seconds": total,
            "generated": generated,
            "tokens_per_second": generated / total,
            "peak_inflight": peak_inflight,
            "meets_slo": service.slo_report().meets_all,
            "index_builds_skipped": service.db.num_pending_index_builds,
        }
    budgeted = _run_budgeted(model, documents, prompts, tmp_path)
    memory = budgeted.memory_report()
    memory["meets_slo"] = budgeted.slo_report().meets_all
    memory["mean_reuse_ratio"] = budgeted.stats.mean_reuse_ratio
    return results, memory


def test_scheduler_throughput(benchmark, tmp_path):
    results, memory = run_once(benchmark, _sweep, tmp_path)

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                round(r["ingest_seconds"], 2),
                round(r["serve_seconds"], 2),
                round(r["tokens_per_second"], 2),
                r["peak_inflight"],
                r["index_builds_skipped"],
                "yes" if r["meets_slo"] else "NO",
            ]
        )
    sequential = results["sequential/eager"]
    scheduled = results["scheduled/lazy"]
    speedup = scheduled["tokens_per_second"] / sequential["tokens_per_second"]
    lines = [
        format_table(
            ["mode", "ingest (s)", "serve (s)", "tok/s", "inflight", "builds skipped", "SLO"],
            rows,
            title=f"--- end-to-end serving throughput ({NUM_DOCUMENTS} docs, {NUM_REQUESTS} requests) ---",
        ),
        "",
        f"scheduled/lazy speedup over sequential/eager: {speedup:.2f}x "
        f"(lazy ingest skips fine-index builds for the {NUM_DOCUMENTS - len(QUERIED_DOCUMENTS)} "
        "never-queried documents)",
        "",
        "--- memory-governed store (budget = half the library) ---",
        f"resident/total KV bytes: {memory['resident_kv_bytes']}/{memory['total_kv_bytes']}",
        f"context spills: {memory['context_spills']}, reloads: {memory['context_reloads']}",
        f"buffer hit ratio: {memory['buffer_hit_ratio']:.2f}, "
        f"mean reuse ratio: {memory['mean_reuse_ratio']:.2f}, "
        f"SLO met: {memory['meets_slo']}",
    ]
    emit(EXPERIMENT, "\n".join(lines))

    # scheduled serving beats the sequential loop on total tokens/sec
    # (wall-clock comparison skipped in smoke mode: noisy CI runners)
    if not SMOKE:
        assert scheduled["tokens_per_second"] > sequential["tokens_per_second"]
    # it held 4 requests in flight and still met the decode SLO
    assert scheduled["peak_inflight"] >= 4
    assert scheduled["meets_slo"]
    # the win is structural: the never-queried documents were never indexed
    assert scheduled["index_builds_skipped"] == NUM_DOCUMENTS - len(QUERIED_DOCUMENTS)
    # under a budget smaller than the stored KV, contexts spilled and reloaded
    # transparently while requests kept reusing prefixes and meeting the SLO
    assert memory["total_kv_bytes"] > memory["resident_kv_bytes"]
    assert memory["context_spills"] >= 1
    assert memory["context_reloads"] >= 1
    assert memory["mean_reuse_ratio"] > 0.9
    assert memory["meets_slo"]
