"""Benchmark-suite conftest: re-print harness output after the pytest run."""

from __future__ import annotations

from benchmarks.common import SUMMARY_LINES


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Show every harness's table/series in the terminal summary.

    pytest captures stdout of passing tests; emitting the paper-style tables
    here makes them visible in ``bench_output.txt`` without requiring ``-s``.
    """
    if not SUMMARY_LINES:
        return
    terminalreporter.section("paper tables and figures (reproduced)")
    for block in SUMMARY_LINES:
        terminalreporter.write_line(block)
