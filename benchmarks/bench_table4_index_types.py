"""Table 4 — characteristics of the three index types.

The paper summarises the coarse, fine and flat index families: which query
types they support, how much (GPU) memory they need resident, and how their
retrieval latency behaves for small vs large k.  The reproduction builds all
three over the same key set and measures the actual numbers, checking the
qualitative orderings of the table.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.index.coarse import CoarseBlockIndex
from repro.index.flat import FlatIndex
from repro.index.roargraph import RoarGraphIndex
from repro.query.topk import graph_topk_search

EXPERIMENT = "Table 4: index type characteristics"

NUM_KEYS = 8192
HEAD_DIM = 32
SMALL_K = 16
LARGE_K = 1024
NUM_QUERIES = 10


def _measure_index_types():
    rng = np.random.default_rng(0)
    keys = rng.normal(size=(NUM_KEYS, HEAD_DIM)).astype(np.float32)
    query_sample = rng.normal(size=(2048, HEAD_DIM)).astype(np.float32) + 0.4
    queries = rng.normal(size=(NUM_QUERIES, HEAD_DIM)).astype(np.float32) + 0.4

    coarse = CoarseBlockIndex(block_size=128)
    coarse.build(keys)
    fine = RoarGraphIndex()
    fine.build(keys, query_sample=query_sample)
    flat = FlatIndex()
    flat.build(keys)

    def timed(func):
        start = time.perf_counter()
        for query in queries:
            func(query)
        return (time.perf_counter() - start) / NUM_QUERIES * 1000

    results = {
        "Coarse": {
            "supported": "Top-k, Filter",
            "resident_bytes": coarse.memory_bytes,
            "small_k_ms": timed(lambda q: coarse.search_topk(q, SMALL_K)),
            "large_k_ms": timed(lambda q: coarse.search_topk(q, LARGE_K)),
        },
        "Fine": {
            "supported": "Top-k, Filter, DIPR",
            # only the graph structure must stay resident; vectors stream from CPU/disk
            "resident_bytes": fine.graph.memory_bytes,
            "small_k_ms": timed(
                lambda q: graph_topk_search(fine.vectors, fine.graph, q, SMALL_K, [fine.entry_point])
            ),
            "large_k_ms": timed(
                lambda q: graph_topk_search(fine.vectors, fine.graph, q, LARGE_K, [fine.entry_point])
            ),
        },
        "Flat": {
            "supported": "Top-k, Filter, DIPR",
            "resident_bytes": 0,
            "small_k_ms": timed(lambda q: flat.search_topk(q, SMALL_K)),
            "large_k_ms": timed(lambda q: flat.search_topk(q, LARGE_K)),
        },
    }
    return results


def test_table4_index_types(benchmark):
    results = run_once(benchmark, _measure_index_types)

    rows = []
    for name, row in results.items():
        rows.append(
            [
                name,
                row["supported"],
                round(row["resident_bytes"] / 2**20, 2),
                round(row["small_k_ms"], 2),
                round(row["large_k_ms"], 2),
            ]
        )
    table = format_table(
        ["index type", "supported queries", "resident memory (MiB)", f"latency k={SMALL_K} (ms)", f"latency k={LARGE_K} (ms)"],
        rows,
        title=(
            "Paper Table 4: coarse = large memory / low latency; fine = small memory, fast at small k but slow at "
            "large k; flat = no resident structure, sequential scans win at large k."
        ),
    )
    emit(EXPERIMENT, table)

    coarse, fine, flat = results["Coarse"], results["Fine"], results["Flat"]
    # the coarse index keeps all token blocks resident -> largest memory
    assert coarse["resident_bytes"] > fine["resident_bytes"] > flat["resident_bytes"]
    # fine-grained search degrades as k grows; the flat scan degrades much less
    assert fine["large_k_ms"] > fine["small_k_ms"] * 3
    assert flat["large_k_ms"] < flat["small_k_ms"] * 3
    # at large k the flat scan is at least competitive with the graph index
    assert flat["large_k_ms"] < fine["large_k_ms"]
