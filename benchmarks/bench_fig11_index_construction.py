"""Figure 11 — index construction acceleration (GPU build + GQA sharing).

The paper builds RoarGraph indexes over contexts of 40K-200K tokens and shows
(a) construction time: GPU kNN construction is 3-15x faster than the CPU
baseline, and GQA-based index sharing raises the total speedup to 12-62x;
(b) memory: sharing one index per KV-head group shrinks index memory ~4x.

The reproduction builds real indexes at reduced context lengths (the
substrate is pure Python) for the *measured* wall-clock and memory columns,
and reports the calibrated cost model's construction time at the paper's
context lengths for the speedup factors.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.simulator.cost_model import CostModel

EXPERIMENT = "Figure 11: index construction time and memory"

MEASURED_LENGTHS = [2048, 4096, 8192]
PAPER_LENGTHS = [40_000, 80_000, 120_000, 160_000, 200_000]
NUM_KV_HEADS = 2
NUM_QUERY_HEADS = 8
HEAD_DIM = 32


def _build_variants():
    rng = np.random.default_rng(0)
    variants = {
        "CPU (per query head)": IndexBuildConfig(backend="cpu", gqa_share=False),
        "GPU (per query head)": IndexBuildConfig(backend="gpu", gqa_share=False),
        "GPU + share": IndexBuildConfig(backend="gpu", gqa_share=True),
    }
    measured = {name: [] for name in variants}
    for length in MEASURED_LENGTHS:
        keys = rng.normal(size=(NUM_KV_HEADS, length, HEAD_DIM)).astype(np.float32)
        queries = rng.normal(size=(NUM_QUERY_HEADS, max(64, length // 4), HEAD_DIM)).astype(np.float32)
        for name, config in variants.items():
            builder = ContextIndexBuilder(config)
            _, report = builder.build_layer(0, keys, queries)
            measured[name].append(report)

    # paper-scale modelled construction times (one layer of Llama-3-8B: 32
    # query heads, 8 KV heads, 40% query sampling)
    cost = CostModel()
    modelled = {name: [] for name in variants}
    for length in PAPER_LENGTHS:
        num_queries = int(0.4 * length)
        modelled["CPU (per query head)"].append(
            cost.index_build_seconds(length, num_queries, num_indexes=32, on_gpu=False)
        )
        modelled["GPU (per query head)"].append(
            cost.index_build_seconds(length, num_queries, num_indexes=32, on_gpu=True)
        )
        modelled["GPU + share"].append(
            cost.index_build_seconds(length, num_queries, num_indexes=8, on_gpu=True)
        )
    return measured, modelled


def test_fig11_index_construction(benchmark):
    measured, modelled = run_once(benchmark, _build_variants)

    rows = []
    for i, length in enumerate(MEASURED_LENGTHS):
        for name, reports in measured.items():
            report = reports[i]
            rows.append(
                [
                    length,
                    name,
                    report.num_indexes,
                    round(report.wall_clock_seconds, 2),
                    round(report.index_memory_bytes / 2**20, 1),
                ]
            )
    lines = [
        format_table(
            ["context len", "variant", "# indexes", "build wall-clock (s)", "index memory (MiB)"],
            rows,
            title="Measured (substrate scale): real RoarGraph builds per variant",
        )
    ]

    model_rows = []
    for i, length in enumerate(PAPER_LENGTHS):
        cpu = modelled["CPU (per query head)"][i]
        gpu = modelled["GPU (per query head)"][i]
        shared = modelled["GPU + share"][i]
        model_rows.append(
            [
                f"{length // 1000}K",
                round(cpu, 1),
                round(gpu, 1),
                round(shared, 1),
                f"{cpu / gpu:.1f}x",
                f"{cpu / shared:.1f}x",
            ]
        )
    lines.append("")
    lines.append(
        format_table(
            ["context", "CPU (s)", "GPU (s)", "GPU+share (s)", "GPU speedup", "GPU+share speedup"],
            model_rows,
            title="Modelled at paper scale (Llama-3-8B layer): paper reports 3-15x (GPU) and 12-62x (GPU+share)",
        )
    )
    emit(EXPERIMENT, "\n".join(lines))

    # memory: sharing reduces the number of indexes and their memory ~4x
    for i in range(len(MEASURED_LENGTHS)):
        per_head = measured["GPU (per query head)"][i]
        shared = measured["GPU + share"][i]
        assert shared.num_indexes * 4 == per_head.num_indexes
        assert shared.index_memory_bytes < per_head.index_memory_bytes / 2.5

    # modelled speedups land in the paper's ranges
    for i in range(len(PAPER_LENGTHS)):
        cpu = modelled["CPU (per query head)"][i]
        gpu = modelled["GPU (per query head)"][i]
        shared = modelled["GPU + share"][i]
        assert 3.0 <= cpu / gpu <= 15.0
        assert 12.0 <= cpu / shared <= 62.0
