"""Continuous batched decode — one forward pass across in-flight sessions.

The PR-1 scheduler issued one ``model.decode_step()`` per in-flight request
per round, so forward-pass cost grew linearly with concurrency even though
every request shares the same weights.  This harness measures the two wins of
the batched-decode refactor:

* **decode throughput** — 8 in-flight requests decoding through
  ``TransformerModel.decode_batch`` (embedding / projections / MLP / LM head
  stacked over the batch, attention routed per-session) vs the per-session
  ``decode_step`` loop;
* **preemption** — with the ``slo`` policy and ``preemption`` enabled, an
  SLO-critical request arriving while long batch jobs occupy every slot
  meets a TTFT deadline it misses under plain in-flight occupancy (the
  victim with the most slack is paused and later resumed, losing nothing).

``BENCH_SMOKE=1`` shrinks the workload for CI sanity runs.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, run_once, smoke_mode
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.simulator.slo import BATCH_SLO, SLO

EXPERIMENT = "Batched decode (continuous batching + preemption)"

SMOKE = smoke_mode()
NUM_INFLIGHT = 8
DECODE_TOKENS = 8 if SMOKE else 48
LONG_JOB_TOKENS = 24 if SMOKE else 220
MIN_SPEEDUP = 1.3


def _throughput(model, decode_batching: bool):
    """Decode tokens/sec with NUM_INFLIGHT tiny-prompt requests in flight."""
    config = AlayaDBConfig(
        decode_batching=decode_batching, max_inflight_requests=NUM_INFLIGHT
    )
    service = InferenceService(model, config)
    for i in range(NUM_INFLIGHT):
        service.submit(f"q{i}", max_new_tokens=DECODE_TOKENS)
    start = time.perf_counter()
    service.drain()
    seconds = time.perf_counter() - start
    generated = service.stats.total_generated_tokens
    return {
        "tokens_per_second": generated / seconds,
        "serve_seconds": seconds,
        "generated": generated,
        "batched_calls": service.scheduler.stats.batched_decode_calls,
    }


def _slo_arrival(model, preemption: bool, ttft_deadline: float | None):
    """TTFT (from submission) of a critical arrival while long jobs hog slots.

    Returns the critical request's end-to-end first-token latency plus the
    preemption counters.  ``ttft_deadline=None`` submits the critical request
    with a 0.2s deadline purely for policy ordering (calibration run).
    """
    config = AlayaDBConfig(
        scheduler_policy="slo",
        preemption=preemption,
        max_inflight_requests=2,
    )
    service = InferenceService(model, config)
    for i in range(2):
        service.submit(
            f"long-running batch job {i}", max_new_tokens=LONG_JOB_TOKENS, slo=BATCH_SLO
        )
    # let both long jobs occupy the in-flight slots
    for _ in range(3):
        service.step()
    slo = SLO(ttft_seconds=ttft_deadline if ttft_deadline is not None else 0.2)
    critical_id = service.submit("urgent interactive question", max_new_tokens=2, slo=slo)
    service.drain()
    _, record = service.result(critical_id)
    return {
        "ttft_from_submit": record.queue_seconds + record.ttft_seconds,
        "preemptions": service.scheduler.stats.preemptions,
        "resumes": service.scheduler.stats.resumes,
        "all_finished": service.stats.num_requests == 3,
    }


def _sweep():
    model = TransformerModel(ModelConfig.tiny(seed=103))
    per_session = _throughput(model, decode_batching=False)
    batched = _throughput(model, decode_batching=True)

    # calibrate the deadline between the two serving modes: without
    # preemption the critical arrival waits for a whole long job to finish
    occupied = _slo_arrival(model, preemption=False, ttft_deadline=None)
    deadline = occupied["ttft_from_submit"] / 2
    preempted = _slo_arrival(model, preemption=True, ttft_deadline=deadline)
    return per_session, batched, occupied, preempted, deadline


def test_batched_decode(benchmark):
    per_session, batched, occupied, preempted, deadline = run_once(benchmark, _sweep)

    speedup = batched["tokens_per_second"] / per_session["tokens_per_second"]
    rows = [
        [
            name,
            round(r["serve_seconds"], 3),
            r["generated"],
            round(r["tokens_per_second"], 1),
            r["batched_calls"],
        ]
        for name, r in (("per-session loop", per_session), ("batched decode", batched))
    ]
    lines = [
        format_table(
            ["decode mode", "serve (s)", "tokens", "tok/s", "batched calls"],
            rows,
            title=f"--- decode throughput, {NUM_INFLIGHT} in-flight requests ---",
        ),
        f"batched decode speedup: {speedup:.2f}x",
        "",
        "--- SLO-critical arrival vs 2 slot-hogging long jobs ---",
        f"TTFT deadline (calibrated): {deadline * 1000:.1f} ms",
        f"without preemption: TTFT {occupied['ttft_from_submit'] * 1000:.1f} ms (misses)",
        f"with preemption:    TTFT {preempted['ttft_from_submit'] * 1000:.1f} ms "
        f"({preempted['preemptions']} preemption(s), {preempted['resumes']} resume(s))",
    ]
    emit(EXPERIMENT, "\n".join(lines))

    # structural wins hold at any size; wall-clock comparisons only run at
    # full size (smoke mode keeps CI fast and immune to noisy-runner timing)
    assert batched["batched_calls"] > 0
    assert per_session["batched_calls"] == 0
    assert preempted["preemptions"] >= 1
    assert preempted["resumes"] >= 1
    # the preempted victims still completed their full generations
    assert preempted["all_finished"]
    if not SMOKE:
        # batching the shared dense work beats one forward pass per session
        assert speedup >= MIN_SPEEDUP
        # the critical arrival meets (with preemption) the deadline it
        # misses under plain in-flight occupancy
        assert occupied["ttft_from_submit"] > deadline
        assert preempted["ttft_from_submit"] <= deadline
