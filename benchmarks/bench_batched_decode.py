"""Continuous batched decode — one forward pass across in-flight sessions.

The PR-1 scheduler issued one ``model.decode_step()`` per in-flight request
per round, so forward-pass cost grew linearly with concurrency even though
every request shares the same weights.  This harness measures the two wins of
the batched-decode refactor:

* **decode throughput** — 8 in-flight requests decoding through
  ``TransformerModel.decode_batch`` (embedding / projections / MLP / LM head
  stacked over the batch, attention routed per-session) vs the per-session
  ``decode_step`` loop;
* **preemption** — with the ``slo`` policy and ``preemption`` enabled, an
  SLO-critical request arriving while long batch jobs occupy every slot
  meets a TTFT deadline it misses under plain in-flight occupancy (the
  victim with the most slack is paused and later resumed, losing nothing);
* **cross-request sparse rounds** — N sessions decoding against one shared
  stored context with every layer routed to flat DIPR scans: with
  ``cross_request_sparse_batching`` the scheduler stacks the per-layer
  retrieval into one gemm over the concatenated queries and merges the
  partial-attention pieces in one engine call per layer, vs one retrieval +
  merge round per session.  Outputs must stay token-identical at any size.

``BENCH_SMOKE=1`` shrinks the workload for CI sanity runs.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.simulator.slo import BATCH_SLO, SLO

EXPERIMENT = "Batched decode (continuous batching + preemption)"

SMOKE = smoke_mode()
NUM_INFLIGHT = 8
DECODE_TOKENS = 8 if SMOKE else 48
LONG_JOB_TOKENS = 24 if SMOKE else 220
MIN_SPEEDUP = 1.3

SPARSE_INFLIGHT = (1, 8) if SMOKE else (1, 8, 16)
SPARSE_DOC_TOKENS = 192 if SMOKE else 1024
SPARSE_DECODE_TOKENS = 6 if SMOKE else 24
SPARSE_REPEATS = 1 if SMOKE else 3
MIN_SPARSE_SPEEDUP = 2.0


def _throughput(model, decode_batching: bool):
    """Decode tokens/sec with NUM_INFLIGHT tiny-prompt requests in flight."""
    config = AlayaDBConfig(
        decode_batching=decode_batching, max_inflight_requests=NUM_INFLIGHT
    )
    service = InferenceService(model, config)
    for i in range(NUM_INFLIGHT):
        service.submit(f"q{i}", max_new_tokens=DECODE_TOKENS)
    start = time.perf_counter()
    service.drain()
    seconds = time.perf_counter() - start
    generated = service.stats.total_generated_tokens
    return {
        "tokens_per_second": generated / seconds,
        "serve_seconds": seconds,
        "generated": generated,
        "batched_calls": service.scheduler.stats.batched_decode_calls,
    }


def _slo_arrival(model, preemption: bool, ttft_deadline: float | None):
    """TTFT (from submission) of a critical arrival while long jobs hog slots.

    Returns the critical request's end-to-end first-token latency plus the
    preemption counters.  ``ttft_deadline=None`` submits the critical request
    with a 0.2s deadline purely for policy ordering (calibration run).
    """
    config = AlayaDBConfig(
        scheduler_policy="slo",
        preemption=preemption,
        max_inflight_requests=2,
    )
    service = InferenceService(model, config)
    for i in range(2):
        service.submit(
            f"long-running batch job {i}", max_new_tokens=LONG_JOB_TOKENS, slo=BATCH_SLO
        )
    # let both long jobs occupy the in-flight slots
    for _ in range(3):
        service.step()
    slo = SLO(ttft_seconds=ttft_deadline if ttft_deadline is not None else 0.2)
    critical_id = service.submit("urgent interactive question", max_new_tokens=2, slo=slo)
    service.drain()
    _, record = service.result(critical_id)
    return {
        "ttft_from_submit": record.queue_seconds + record.ttft_seconds,
        "preemptions": service.scheduler.stats.preemptions,
        "resumes": service.scheduler.stats.resumes,
        "all_finished": service.stats.num_requests == 3,
    }


def _sparse_mix(model, num_inflight: int, cross: bool):
    """Per-token decode latency of ``num_inflight`` sparse sessions sharing
    one ingested long context, with every layer routed to flat DIPR scans.

    All prompts prefix-match the stored document (plus a distinct suffix
    token), so every session lands in one cross-request compatibility group.
    The unscaled ``dipr_beta`` keeps retrieval selective (tens of critical
    tokens per head, the paper's sparse regime) rather than near-dense.
    """
    config = AlayaDBConfig(
        cross_request_sparse_batching=cross,
        max_inflight_requests=num_inflight,
        short_context_threshold=64,
        window_initial_tokens=8,
        window_last_tokens=16,
        gpu_memory_budget_bytes=1,
        flat_index_layers=tuple(range(model.config.num_layers)),
        min_reuse_tokens=4,
        dipr_beta=1.5,
        scale_beta_to_head_dim=False,
    )
    service = InferenceService(model, config)
    doc = [2 + (i % 250) for i in range(SPARSE_DOC_TOKENS)]
    service.db.prefill_and_import(model, doc, build_fine_indexes=False)
    for i in range(num_inflight):
        service.submit(doc + [210 + i], max_new_tokens=SPARSE_DECODE_TOKENS)
    start = time.perf_counter()
    results = service.drain()
    seconds = time.perf_counter() - start
    report = service.memory_report()
    generated = service.stats.total_generated_tokens
    return {
        "ms_per_token": seconds / max(generated, 1) * 1000,
        "generated": generated,
        "tokens": [
            res.generated_tokens
            for res, _ in sorted(results, key=lambda pair: pair[1].request_id)
        ],
        "retrieval_seconds": report["decode_retrieval_seconds"],
        "merge_seconds": report["decode_merge_seconds"],
    }


def _sparse_sweep(model):
    """cross_request_sparse_batching on vs off across the in-flight sweep.

    Each arm runs ``SPARSE_REPEATS`` times and keeps its fastest run (the
    min is the least noisy wall-clock estimator); outputs are compared on
    every run — decode is deterministic, so all repeats must agree.
    """
    _sparse_mix(model, 1, cross=False)  # warm-up: the first run pays cold caches
    sweep = {}
    for n in SPARSE_INFLIGHT:
        runs = {cross: [_sparse_mix(model, n, cross) for _ in range(SPARSE_REPEATS)] for cross in (False, True)}
        per_session = min(runs[False], key=lambda r: r["ms_per_token"])
        batched = min(runs[True], key=lambda r: r["ms_per_token"])
        sweep[n] = {
            "per_session": per_session,
            "batched": batched,
            "speedup": per_session["ms_per_token"] / batched["ms_per_token"],
            "token_identical": all(
                r["tokens"] == per_session["tokens"] for arm in runs.values() for r in arm
            ),
        }
    return sweep


def _sweep():
    model = TransformerModel(ModelConfig.tiny(seed=103))
    per_session = _throughput(model, decode_batching=False)
    batched = _throughput(model, decode_batching=True)

    # calibrate the deadline between the two serving modes: without
    # preemption the critical arrival waits for a whole long job to finish
    occupied = _slo_arrival(model, preemption=False, ttft_deadline=None)
    deadline = occupied["ttft_from_submit"] / 2
    preempted = _slo_arrival(model, preemption=True, ttft_deadline=deadline)
    sparse = _sparse_sweep(model)
    return per_session, batched, occupied, preempted, deadline, sparse


def test_batched_decode(benchmark):
    per_session, batched, occupied, preempted, deadline, sparse = run_once(benchmark, _sweep)

    speedup = batched["tokens_per_second"] / per_session["tokens_per_second"]
    rows = [
        [
            name,
            round(r["serve_seconds"], 3),
            r["generated"],
            round(r["tokens_per_second"], 1),
            r["batched_calls"],
        ]
        for name, r in (("per-session loop", per_session), ("batched decode", batched))
    ]
    sparse_rows = [
        [
            n,
            round(r["per_session"]["ms_per_token"], 2),
            round(r["batched"]["ms_per_token"], 2),
            f"{r['speedup']:.2f}x",
            "yes" if r["token_identical"] else "NO",
        ]
        for n, r in sparse.items()
    ]
    lines = [
        format_table(
            ["decode mode", "serve (s)", "tokens", "tok/s", "batched calls"],
            rows,
            title=f"--- decode throughput, {NUM_INFLIGHT} in-flight requests ---",
        ),
        f"batched decode speedup: {speedup:.2f}x",
        "",
        "--- SLO-critical arrival vs 2 slot-hogging long jobs ---",
        f"TTFT deadline (calibrated): {deadline * 1000:.1f} ms",
        f"without preemption: TTFT {occupied['ttft_from_submit'] * 1000:.1f} ms (misses)",
        f"with preemption:    TTFT {preempted['ttft_from_submit'] * 1000:.1f} ms "
        f"({preempted['preemptions']} preemption(s), {preempted['resumes']} resume(s))",
        "",
        format_table(
            ["in-flight", "per-session ms/tok", "batched ms/tok", "speedup", "tokens match"],
            sparse_rows,
            title=(
                f"--- cross-request sparse rounds, {SPARSE_DOC_TOKENS}-token shared "
                f"context, flat DIPR plans ---"
            ),
        ),
    ]
    emit(EXPERIMENT, "\n".join(lines))

    write_bench_json(
        EXPERIMENT,
        metrics={
            "dense_tokens_per_second_per_session": per_session["tokens_per_second"],
            "dense_tokens_per_second_batched": batched["tokens_per_second"],
            "dense_batched_speedup": speedup,
            "preemption_ttft_ms": preempted["ttft_from_submit"] * 1000,
            "occupied_ttft_ms": occupied["ttft_from_submit"] * 1000,
            "sparse_ms_per_token": {
                str(n): {
                    "per_session": r["per_session"]["ms_per_token"],
                    "batched": r["batched"]["ms_per_token"],
                    "speedup": r["speedup"],
                }
                for n, r in sparse.items()
            },
        },
        config={
            "num_inflight": NUM_INFLIGHT,
            "decode_tokens": DECODE_TOKENS,
            "sparse_inflight": list(SPARSE_INFLIGHT),
            "sparse_doc_tokens": SPARSE_DOC_TOKENS,
            "sparse_decode_tokens": SPARSE_DECODE_TOKENS,
            "sparse_repeats": SPARSE_REPEATS,
            "sparse_dipr_beta": 1.5,
            "model": "ModelConfig.tiny(seed=103)",
        },
    )

    # structural wins hold at any size; wall-clock comparisons only run at
    # full size (smoke mode keeps CI fast and immune to noisy-runner timing)
    assert batched["batched_calls"] > 0
    assert per_session["batched_calls"] == 0
    assert preempted["preemptions"] >= 1
    assert preempted["resumes"] >= 1
    # the preempted victims still completed their full generations
    assert preempted["all_finished"]
    # the cross-request round is a pure performance refactor: token-identical
    # outputs at every size, and at 8 in-flight the stacked round must not be
    # slower than one retrieval + merge round per session (asserted in smoke
    # mode too, so CI catches the batching regressing into overhead)
    for n, r in sparse.items():
        assert r["token_identical"], (
            f"sparse mix @ {n} in-flight: batched outputs diverged from the "
            f"per-session path"
        )
        assert r["batched"]["generated"] == r["per_session"]["generated"]
    assert sparse[8]["batched"]["ms_per_token"] <= sparse[8]["per_session"]["ms_per_token"]
    if not SMOKE:
        # batching the shared dense work beats one forward pass per session
        assert speedup >= MIN_SPEEDUP
        # the critical arrival meets (with preemption) the deadline it
        # misses under plain in-flight occupancy
        assert occupied["ttft_from_submit"] > deadline
        assert preempted["ttft_from_submit"] <= deadline
        # one retrieval + attention round per scheduler step: >= 2x per-token
        # latency win at 8+ in-flight sparse sessions
        for n in SPARSE_INFLIGHT:
            if n >= 8:
                assert sparse[n]["speedup"] >= MIN_SPARSE_SPEEDUP, (
                    f"sparse mix @ {n} in-flight: {sparse[n]['speedup']:.2f}x "
                    f"< {MIN_SPARSE_SPEEDUP}x"
                )
