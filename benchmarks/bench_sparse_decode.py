"""Head-batched sparse decode — the per-token attention hot path.

``Session._sparse_attention`` used to run a Python loop over query heads: one
``PlanExecutor.retrieve`` and one ``DataCentricAttentionEngine.head_output``
call per head per layer per token, so the continuous-batching win of the
scheduler stopped dead at the attention boundary.  This harness measures the
``sparse_head_batching`` refactor on one session decoding against a stored
long context, per plan mix (Figure 8's optimizer outputs):

* **flat scan** — DIPR over the flat index on every layer; the batched path
  computes one ``(g, d) @ (d, n)`` score matrix per GQA group instead of
  ``g`` separate scans;
* **coarse top-k** — the large-budget / InfLLM path; the batched path shares
  the query-to-representative matmul and the block top-k across each group;
* **dipr (flat + fine)** — the paper's limited-budget mix (flat layer 0,
  RoarGraph elsewhere); with ``fine_frontier_batching`` the RoarGraph is
  walked **once per GQA group** (shared visited set + frontier, fused hop
  matmuls) instead of once per query head, so the fine mix now batches too.

The head-batched mode (group frontier off) must produce allclose-identical
outputs and identical ``DecodeStepStats`` vs the per-head fallback; the
group-frontier mode must produce allclose-identical outputs with **at most**
the per-head sum of distance computations (asserted at every size, including
the CI smoke run).  At full size the scan-based mixes must hit
``MIN_SPEEDUP`` and the fine mix ``MIN_FINE_SPEEDUP`` with 8+ query heads.
``BENCH_SMOKE=1`` shrinks the workload for CI sanity runs.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.context_store import StoredContext
from repro.core.session import Session
from repro.index.builder import LayerIndexes
from repro.index.coarse import CoarseBlockIndex
from repro.index.roargraph import RoarGraphIndex
from repro.kvcache.serialization import KVSnapshot

EXPERIMENT = "Sparse decode head batching"

SMOKE = smoke_mode()
NUM_KV_HEADS = 2 if SMOKE else 8
GQA_GROUP_SIZE = 4
NUM_HEADS = NUM_KV_HEADS * GQA_GROUP_SIZE  # 8 smoke / 32 full
NUM_LAYERS = 2
HEAD_DIM = 16
CONTEXT_TOKENS = 256 if SMOKE else 2048
DECODE_TOKENS = 3 if SMOKE else 15
MIN_SPEEDUP = 2.0
MIN_FINE_SPEEDUP = 1.5
FINE_MIX = "dipr (flat+fine)"

BASE_CONFIG = dict(
    short_context_threshold=64,
    window_initial_tokens=16 if SMOKE else 64,
    window_last_tokens=32 if SMOKE else 128,
    dipr_beta=6.0,
    scale_beta_to_head_dim=False,
    dipr_capacity_threshold=16,
)

#: plan mixes: config knobs routing the optimizer to each execution path
MIXES = {
    "flat scan": dict(gpu_memory_budget_bytes=1, flat_index_layers=tuple(range(NUM_LAYERS))),
    "coarse top-k": dict(gpu_memory_budget_bytes=10**18, topk_k=64, coarse_num_blocks=4),
    "dipr (flat+fine)": dict(gpu_memory_budget_bytes=1),
}
ASSERTED_MIXES = ("flat scan", "coarse top-k")


def _build_context(rng):
    """A stored context with clustered keys (attention-like) plus all indexes."""
    keys, values, directions = {}, {}, {}
    cluster_size = max(8, CONTEXT_TOKENS // 32)
    for layer in range(NUM_LAYERS):
        layer_keys = rng.normal(0, 0.35, size=(NUM_KV_HEADS, CONTEXT_TOKENS, HEAD_DIM)).astype(np.float32)
        directions[layer] = []
        for kv_head in range(NUM_KV_HEADS):
            direction = rng.normal(size=HEAD_DIM)
            direction /= np.linalg.norm(direction)
            cluster = rng.choice(CONTEXT_TOKENS, size=cluster_size, replace=False)
            layer_keys[kv_head, cluster] += (4.0 * direction).astype(np.float32)
            directions[layer].append(direction)
        keys[layer] = layer_keys
        values[layer] = rng.normal(size=(NUM_KV_HEADS, CONTEXT_TOKENS, HEAD_DIM)).astype(np.float32)
    snapshot = KVSnapshot(tokens=list(range(CONTEXT_TOKENS)), keys=keys, values=values)
    context = StoredContext(context_id="bench-sparse", snapshot=snapshot)
    for layer in range(NUM_LAYERS):
        fine, coarse = [], []
        for kv_head in range(NUM_KV_HEADS):
            samples = (
                np.asarray(directions[layer][kv_head])[None, :] * np.sqrt(HEAD_DIM)
                + rng.normal(0, 0.8, size=(max(64, CONTEXT_TOKENS // 5), HEAD_DIM))
            ).astype(np.float32)
            index = RoarGraphIndex()
            index.build(keys[layer][kv_head], query_sample=samples)
            fine.append(index)
            block_index = CoarseBlockIndex(block_size=64)
            block_index.build(keys[layer][kv_head])
            coarse.append(block_index)
        context.fine_indexes[layer] = LayerIndexes(
            layer=layer, indexes=fine, shared=True, gqa_group_size=GQA_GROUP_SIZE
        )
        context.coarse_indexes[layer] = coarse
    return context, directions


def _decode(config: AlayaDBConfig, context, directions):
    """Decode DECODE_TOKENS tokens; returns per-token seconds, outputs, stats."""
    session = Session(
        config, context=context, reused_prefix_length=context.num_tokens, num_layers=NUM_LAYERS
    )
    rng = np.random.default_rng(93)
    outputs = []
    start = time.perf_counter()
    for _ in range(DECODE_TOKENS):
        for layer in range(NUM_LAYERS):
            q = np.stack(
                [
                    directions[layer][head // GQA_GROUP_SIZE] * np.sqrt(HEAD_DIM)
                    + rng.normal(0, 0.5, HEAD_DIM)
                    for head in range(NUM_HEADS)
                ]
            ).astype(np.float32)[:, None, :]
            k = rng.normal(0, 0.35, size=(NUM_KV_HEADS, 1, HEAD_DIM)).astype(np.float32)
            v = rng.normal(size=(NUM_KV_HEADS, 1, HEAD_DIM)).astype(np.float32)
            session.update_query(q, k, v, layer)
            outputs.append(session.attention(q, layer))
    seconds = (time.perf_counter() - start) / DECODE_TOKENS
    return seconds, outputs, session.total_decode_stats, session.plan_for_layer(NUM_LAYERS - 1)


def _sweep():
    rng = np.random.default_rng(0)
    context, directions = _build_context(rng)
    results = {}
    for mix, overrides in MIXES.items():
        config = AlayaDBConfig(**{**BASE_CONFIG, **overrides})
        # group frontier off in the "batched" arm: it pins the pure
        # head-batching refactor (outputs AND stats identical per head)
        batched_s, batched_out, batched_stats, plan = _decode(
            replace(config, sparse_head_batching=True, fine_frontier_batching=False),
            context,
            directions,
        )
        per_head_s, per_head_out, per_head_stats, _ = _decode(
            replace(config, sparse_head_batching=False), context, directions
        )
        results[mix] = {
            "batched_ms": batched_s * 1000,
            "per_head_ms": per_head_s * 1000,
            "speedup": per_head_s / batched_s,
            "equivalent": all(
                np.allclose(a, b, atol=1e-4) for a, b in zip(batched_out, per_head_out)
            ),
            "stats_equal": batched_stats == per_head_stats,
            "selected_per_head": batched_stats.mean_selected_per_head,
            "plan": plan.describe(),
        }
        if mix == FINE_MIX:
            # third arm: the group-frontier walk (the default configuration)
            group_s, group_out, group_stats, _ = _decode(config, context, directions)
            results[mix]["group"] = {
                "group_ms": group_s * 1000,
                "speedup_vs_per_head": per_head_s / group_s,
                "speedup_vs_batched": batched_s / group_s,
                "equivalent": all(
                    np.allclose(a, b, atol=1e-4) for a, b in zip(group_out, per_head_out)
                ),
                "group_distance": group_stats.num_distance_computations,
                "per_head_distance": per_head_stats.num_distance_computations,
                "group_hops": group_stats.num_graph_hops,
                "per_head_hops": per_head_stats.num_graph_hops,
                "selected_equal": group_stats.num_selected_tokens
                == per_head_stats.num_selected_tokens,
            }
    return results


def test_sparse_decode_head_batching(benchmark):
    results = run_once(benchmark, _sweep)

    rows = [
        [
            mix,
            r["plan"],
            round(r["per_head_ms"], 2),
            round(r["batched_ms"], 2),
            f"{r['speedup']:.2f}x",
            round(r["selected_per_head"], 1),
        ]
        for mix, r in results.items()
    ]
    group = results[FINE_MIX]["group"]
    lines = [
        format_table(
            ["plan mix", "last-layer plan", "per-head ms/tok", "batched ms/tok", "speedup", "sel/head"],
            rows,
            title=(
                f"--- sparse decode, {NUM_HEADS} query heads "
                f"({NUM_KV_HEADS} KV x group {GQA_GROUP_SIZE}), "
                f"{CONTEXT_TOKENS} stored tokens, {NUM_LAYERS} layers ---"
            ),
        ),
        format_table(
            ["fine path", "ms/tok", "graph hops", "distance comps", "speedup vs per-head"],
            [
                [
                    "per-head walk",
                    round(results[FINE_MIX]["per_head_ms"], 2),
                    group["per_head_hops"],
                    group["per_head_distance"],
                    "1.00x",
                ],
                [
                    "group frontier",
                    round(group["group_ms"], 2),
                    group["group_hops"],
                    group["group_distance"],
                    f"{group['speedup_vs_per_head']:.2f}x",
                ],
            ],
            title=(
                f"--- {FINE_MIX} mix: group-frontier DIPRS "
                f"(one walk per GQA group of {GQA_GROUP_SIZE}) ---"
            ),
        ),
    ]
    emit(EXPERIMENT, "\n".join(lines))

    write_bench_json(
        EXPERIMENT,
        metrics={
            mix: {
                "per_head_ms": r["per_head_ms"],
                "batched_ms": r["batched_ms"],
                "speedup": r["speedup"],
                "selected_per_head": r["selected_per_head"],
            }
            for mix, r in results.items()
        }
        | {
            "group_frontier": {
                "group_ms": group["group_ms"],
                "speedup_vs_per_head": group["speedup_vs_per_head"],
                "group_distance": group["group_distance"],
                "per_head_distance": group["per_head_distance"],
            }
        },
        config={
            "num_heads": NUM_HEADS,
            "num_kv_heads": NUM_KV_HEADS,
            "gqa_group_size": GQA_GROUP_SIZE,
            "context_tokens": CONTEXT_TOKENS,
            "num_layers": NUM_LAYERS,
            "decode_tokens": DECODE_TOKENS,
        },
    )

    # equivalence holds at any size: the batched path must be a pure
    # performance refactor
    for mix, r in results.items():
        assert r["equivalent"], f"{mix}: batched outputs diverged from the per-head path"
        assert r["stats_equal"], f"{mix}: DecodeStepStats diverged from the per-head path"
    # the group frontier may only change *work*, never outputs — and the
    # shared walk must do at most the per-head sum of distance computations
    # (asserted in smoke mode too, so CI catches accounting regressions)
    assert group["equivalent"], "group-frontier outputs diverged from the per-head path"
    assert group["selected_equal"], "group-frontier selected-token counts diverged"
    assert group["group_distance"] <= group["per_head_distance"], (
        f"group frontier did more scoring work than the per-head walks: "
        f"{group['group_distance']} > {group['per_head_distance']}"
    )
    if not SMOKE:
        # wall-clock comparisons only at full size (smoke keeps CI fast and
        # immune to noisy-runner timing)
        for mix in ASSERTED_MIXES:
            assert results[mix]["speedup"] >= MIN_SPEEDUP, (
                f"{mix}: {results[mix]['speedup']:.2f}x < {MIN_SPEEDUP}x"
            )
        assert group["group_distance"] < group["per_head_distance"]
        assert group["speedup_vs_per_head"] >= MIN_FINE_SPEEDUP, (
            f"{FINE_MIX}: group frontier {group['speedup_vs_per_head']:.2f}x "
            f"< {MIN_FINE_SPEEDUP}x vs the per-head fallback"
        )
