"""Figure 12 — filter-based DIPRS for partial context reuse.

The paper fixes the reused prefix at 40K tokens and grows the stored context
(so the reuse ratio drops from 100% to 20%), then measures the recall and the
latency of the attribute-filtered DIPRS search: recall stays high and latency
grows only slightly with the index size.  The reproduction runs the same
micro-benchmark at a reduced scale and adds the naive predicate-pruning
baseline as an ablation (its recall collapses, which is why the 2-hop
expansion exists).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.dipr import exact_dipr
from repro.query.filtered import filtered_diprs_search, naive_filtered_diprs_search
from repro.query.types import FilterPredicate, beta_from_alpha
from repro.workloads.generator import ScoringMode, WorkloadSpec, generate_workload

EXPERIMENT = "Figure 12: filter-based DIPRS micro-benchmark"

PREFIX_LENGTH = 2048
REUSE_RATIOS = [1.0, 0.8, 0.6, 0.4, 0.2]
NUM_QUERIES = 8


def _run_micro_benchmark():
    beta = beta_from_alpha(0.012, 32)
    builder = ContextIndexBuilder(IndexBuildConfig())
    rows = []
    for ratio in REUSE_RATIOS:
        stored_length = int(round(PREFIX_LENGTH / ratio))
        spec = WorkloadSpec(
            name=f"fig12-{int(ratio * 100)}",
            context_length=stored_length,
            num_layers=1,
            num_query_heads=4,
            num_kv_heads=2,
            head_dim=32,
            num_decode_steps=NUM_QUERIES,
            critical_fraction_low=0.01,
            critical_fraction_high=0.04,
            scoring=ScoringMode.RECOVERY,
            seed=77,
        )
        workload = generate_workload(spec)
        context = workload.context
        fine, _ = builder.build_context(context.snapshot.keys, context.query_samples)
        index = fine[0].index_for_kv_head(0)
        keys = context.keys(0)[0]
        predicate = FilterPredicate(max_position=PREFIX_LENGTH)

        recalls, naive_recalls, latencies = [], [], []
        for step in range(NUM_QUERIES):
            query = workload.query_for(step, 0, 0)
            truth = set(exact_dipr(keys[:PREFIX_LENGTH], query, beta).indices.tolist())
            start = time.perf_counter()
            result, _ = filtered_diprs_search(
                keys, index.graph, query, beta, [index.entry_point], predicate, capacity_threshold=128
            )
            latencies.append((time.perf_counter() - start) * 1000)
            recalls.append(len(truth & set(result.indices.tolist())) / max(len(truth), 1))
            naive, _ = naive_filtered_diprs_search(
                keys, index.graph, query, beta, [index.entry_point], predicate, capacity_threshold=128
            )
            naive_recalls.append(len(truth & set(naive.indices.tolist())) / max(len(truth), 1))
        rows.append(
            {
                "ratio": ratio,
                "stored_length": stored_length,
                "recall": float(np.mean(recalls)),
                "naive_recall": float(np.mean(naive_recalls)),
                "latency_ms": float(np.mean(latencies)),
            }
        )
    return rows


def test_fig12_filtered_diprs(benchmark):
    rows = run_once(benchmark, _run_micro_benchmark)

    table_rows = [
        [
            f"{int(r['ratio'] * 100)}%",
            r["stored_length"],
            round(r["recall"], 3),
            round(r["naive_recall"], 3),
            round(r["latency_ms"], 2),
        ]
        for r in rows
    ]
    table = format_table(
        ["reuse ratio", "stored context len", "2-hop filtered recall", "naive-prune recall", "latency (ms)"],
        table_rows,
        title=(
            "Paper Figure 12 shape: filtered-DIPRS recall stays high as the reuse ratio drops and latency "
            "grows only slightly; the naive predicate-pruning ablation loses recall."
        ),
    )
    emit(EXPERIMENT, table)

    recalls = [r["recall"] for r in rows]
    latencies = [r["latency_ms"] for r in rows]
    # recall stays high across reuse ratios
    assert min(recalls) > 0.7
    assert recalls[-1] > recalls[0] - 0.25
    # latency grows sub-linearly even though the stored context is 5x larger
    assert latencies[-1] < latencies[0] * 5
    # the 2-hop expansion beats the naive pruning baseline on average
    assert float(np.mean(recalls)) >= float(np.mean([r["naive_recall"] for r in rows]))
