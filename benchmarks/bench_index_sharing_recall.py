"""Section 7.2 claim — GQA-based index sharing costs at most ~3% top-k recall.

One RoarGraph per KV-head group (built from query vectors sampled across the
whole group) replaces one RoarGraph per query head.  The paper reports <= 3%
loss in top-k recall and no end-to-end quality change.  The reproduction
builds both variants over the same keys and measures top-10 recall per query
head.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.workloads.generator import ScoringMode, WorkloadSpec, generate_workload

EXPERIMENT = "GQA index sharing: recall cost"

TOP_K = 10
NUM_EVAL_QUERIES = 12


def _measure_sharing_recall():
    spec = WorkloadSpec(
        name="sharing",
        context_length=4096,
        num_layers=1,
        num_query_heads=8,
        num_kv_heads=2,
        head_dim=32,
        num_decode_steps=NUM_EVAL_QUERIES,
        critical_fraction_low=0.01,
        critical_fraction_high=0.05,
        scoring=ScoringMode.RECOVERY,
        seed=91,
    )
    workload = generate_workload(spec)
    keys = workload.context.snapshot.keys
    queries = workload.context.query_samples

    shared_indexes, shared_report = ContextIndexBuilder(IndexBuildConfig(gqa_share=True)).build_layer(
        0, keys[0], queries[0]
    )
    per_head_indexes, per_head_report = ContextIndexBuilder(IndexBuildConfig(gqa_share=False)).build_layer(
        0, keys[0], queries[0]
    )

    group = spec.gqa_group_size
    recalls = {"shared": [], "per-head": []}
    for query_head in range(spec.num_query_heads):
        kv_head = query_head // group
        head_keys = keys[0][kv_head]
        for step in range(NUM_EVAL_QUERIES):
            query = workload.query_for(step, 0, query_head)
            truth = set(np.argsort(-(head_keys @ query))[:TOP_K].tolist())
            for label, layer_indexes in (("shared", shared_indexes), ("per-head", per_head_indexes)):
                index = layer_indexes.index_for_query_head(query_head)
                found = set(index.search_topk(query, TOP_K).indices.tolist())
                recalls[label].append(len(truth & found) / TOP_K)
    return (
        float(np.mean(recalls["shared"])),
        float(np.mean(recalls["per-head"])),
        shared_report,
        per_head_report,
    )


def test_index_sharing_recall(benchmark):
    shared_recall, per_head_recall, shared_report, per_head_report = run_once(benchmark, _measure_sharing_recall)

    loss = per_head_recall - shared_recall
    table = format_table(
        ["variant", "# indexes", f"top-{TOP_K} recall", "index memory (MiB)", "build wall-clock (s)"],
        [
            ["per query head", per_head_report.num_indexes, round(per_head_recall, 3),
             round(per_head_report.index_memory_bytes / 2**20, 1), round(per_head_report.wall_clock_seconds, 2)],
            ["GQA shared", shared_report.num_indexes, round(shared_recall, 3),
             round(shared_report.index_memory_bytes / 2**20, 1), round(shared_report.wall_clock_seconds, 2)],
        ],
        title=f"Paper claim: GQA index sharing loses <= 3% top-k recall (measured loss: {loss * 100:.1f}%).",
    )
    emit(EXPERIMENT, table)

    assert shared_report.num_indexes * 4 == per_head_report.num_indexes
    assert shared_report.index_memory_bytes < per_head_report.index_memory_bytes / 2.5
    # recall loss stays small (paper: <= 3%; allow a slightly wider band here)
    assert loss <= 0.05
