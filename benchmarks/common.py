"""Shared helpers for the benchmark harnesses.

Every harness regenerates one table or figure of the paper.  Results are
(1) printed, (2) appended to the terminal summary shown after the pytest run
(so they survive output capturing), and (3) written to
``benchmarks/results/<experiment>.txt`` for later inspection.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def smoke_mode() -> bool:
    """True when ``BENCH_SMOKE=1``: harnesses shrink their workloads (and relax
    perf-ratio assertions) so CI can sanity-run them in seconds."""
    return os.environ.get("BENCH_SMOKE", "").lower() in ("1", "true", "yes")

#: lines queued for the pytest terminal summary (see benchmarks/conftest.py)
SUMMARY_LINES: list[str] = []


def emit(experiment: str, text: str) -> None:
    """Record one experiment's output: stdout + terminal summary + results file."""
    banner = f"\n================ {experiment} ================"
    block = f"{banner}\n{text}\n"
    print(block)
    SUMMARY_LINES.append(block)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    safe_name = experiment.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe_name}.txt").write_text(text + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
