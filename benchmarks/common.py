"""Shared helpers for the benchmark harnesses.

Every harness regenerates one table or figure of the paper.  Results are
(1) printed, (2) appended to the terminal summary shown after the pytest run
(so they survive output capturing), (3) written to
``benchmarks/results/<experiment>.txt`` for later inspection, and (4) — for
headline metrics — snapshotted as machine-readable
``benchmarks/results/BENCH_<experiment>.json`` files
(:func:`write_bench_json`) so the perf trajectory is trackable across PRs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def git_revision() -> str | None:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def write_bench_json(
    experiment: str,
    metrics: dict,
    config: dict | None = None,
) -> Path:
    """Snapshot one bench's headline metrics as ``BENCH_<experiment>.json``.

    ``metrics`` carries the headline numbers (latencies, speedups, counts);
    ``config`` whatever knobs shaped the run (sizes, modes, model dims).  A
    provenance block (git revision, timestamp, python/platform, smoke flag)
    is added so a snapshot is interpretable on its own.  Returns the path
    written.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    safe_name = experiment.lower().replace(" ", "_").replace("/", "-")
    path = RESULTS_DIR / f"BENCH_{safe_name}.json"
    payload = {
        "experiment": experiment,
        "metrics": metrics,
        "config": config or {},
        "provenance": {
            "git_revision": git_revision(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "smoke": smoke_mode(),
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def smoke_mode() -> bool:
    """True when ``BENCH_SMOKE=1``: harnesses shrink their workloads (and relax
    perf-ratio assertions) so CI can sanity-run them in seconds."""
    return os.environ.get("BENCH_SMOKE", "").lower() in ("1", "true", "yes")

#: lines queued for the pytest terminal summary (see benchmarks/conftest.py)
SUMMARY_LINES: list[str] = []


def emit(experiment: str, text: str) -> None:
    """Record one experiment's output: stdout + terminal summary + results file."""
    banner = f"\n================ {experiment} ================"
    block = f"{banner}\n{text}\n"
    print(block)
    SUMMARY_LINES.append(block)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    safe_name = experiment.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe_name}.txt").write_text(text + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
