"""Ablation — the DIPRS capacity threshold l0 (Algorithm 1's exploration knob).

Algorithm 1 explores without pruning until the candidate list holds ``l0``
entries; afterwards only critical points are appended.  A small ``l0`` risks
stopping before the true maximum (and the far side of the critical cluster)
is reached; a large ``l0`` approaches an exhaustive search.  This ablation
sweeps ``l0`` on an En.QA-style workload and reports the DIPR recall against
the exact range query together with the search work, locating the knee that
the serving configuration (``AlayaDBConfig.dipr_capacity_threshold``) uses.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_table
from repro.index.builder import ContextIndexBuilder, IndexBuildConfig
from repro.query.dipr import diprs_search, exact_dipr
from repro.query.types import beta_from_alpha
from repro.workloads.generator import generate_workload
from repro.workloads.infinite_bench import infinite_bench_task

EXPERIMENT = "Ablation: DIPRS capacity threshold l0"

CAPACITY_VALUES = [16, 32, 64, 128, 256, 512]
NUM_QUERIES = 6


def _sweep_capacity():
    spec = infinite_bench_task("En.QA", context_length=4096, num_decode_steps=NUM_QUERIES, seed=401)
    workload = generate_workload(spec)
    context = workload.context
    context.fine_indexes, _ = ContextIndexBuilder(IndexBuildConfig()).build_context(
        context.snapshot.keys, context.query_samples
    )
    beta = beta_from_alpha(0.012, spec.head_dim)
    index = context.fine_indexes[0].index_for_kv_head(0)
    keys = context.keys(0)[0]

    rows = []
    for capacity in CAPACITY_VALUES:
        recalls, work, sizes = [], [], []
        for step in range(NUM_QUERIES):
            query = workload.query_for(step, 0, 0)
            truth = set(exact_dipr(keys, query, beta).indices.tolist())
            result, stats = diprs_search(
                keys, index.graph, query, beta, [index.entry_point], capacity_threshold=capacity
            )
            recalls.append(len(truth & set(result.indices.tolist())) / max(len(truth), 1))
            work.append(stats.num_distance_computations)
            sizes.append(len(result))
        rows.append(
            {
                "capacity": capacity,
                "recall": float(np.mean(recalls)),
                "distance_computations": float(np.mean(work)),
                "selected": float(np.mean(sizes)),
            }
        )
    return rows


def test_ablation_diprs_capacity(benchmark):
    rows = run_once(benchmark, _sweep_capacity)

    table = format_table(
        ["l0 (capacity threshold)", "DIPR recall", "distance computations", "selected tokens"],
        [
            [r["capacity"], round(r["recall"], 3), round(r["distance_computations"], 1), round(r["selected"], 1)]
            for r in rows
        ],
        title=(
            "Algorithm 1's exploration knob: recall rises with l0 at the cost of more distance computations; "
            "the serving default (128-256) sits at the knee."
        ),
    )
    emit(EXPERIMENT, table)

    recalls = [r["recall"] for r in rows]
    work = [r["distance_computations"] for r in rows]
    # recall is (weakly) monotone in l0 and work strictly grows
    assert recalls[-1] >= recalls[0]
    assert all(b >= a * 0.95 for a, b in zip(recalls, recalls[1:]))
    assert work[-1] > work[0]
    # the serving default reaches high recall without exhaustive work
    default_row = next(r for r in rows if r["capacity"] == 128)
    assert default_row["recall"] > 0.8
    assert default_row["distance_computations"] < keys_count_upper_bound(rows)


def keys_count_upper_bound(rows) -> float:
    """The work of an exhaustive scan (upper bound for any sensible l0)."""
    return 4096.0
