"""Figure 10 — TTFT of long-context reuse: AlayaDB vs LMCache vs no reuse.

The paper stores a long context and measures the time to the first decoded
token when it is reused: recomputing the prefill is orders of magnitude
slower than any reuse; LMCache must decompress and transfer the whole KV
cache (load time linear in context length); AlayaDB decodes directly over the
offloaded, indexed cache so its TTFT is nearly flat and 19-42x lower than
LMCache.  Panel (b) breaks the latency into load vs decode.

The reproduction sweeps the same context lengths through the calibrated cost
model and additionally exercises the real LMCache store (compression +
decompression of an actual KV snapshot) at a reduced scale to validate the
load-time mechanism.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.reporting import format_series, format_table
from repro.baselines.alayadb_ttft import AlayaDBTTFTModel
from repro.baselines.lmcache import LMCacheStore, NoReusePrefill
from repro.kvcache.serialization import KVSnapshot
from repro.simulator.cost_model import CostModel

EXPERIMENT = "Figure 10: TTFT of long-context reuse"

CONTEXT_LENGTHS = [40_000, 80_000, 120_000, 160_000, 200_000]


def _sweep_ttft():
    cost = CostModel()
    no_reuse = NoReusePrefill(cost)
    lmcache = LMCacheStore(cost)
    alayadb = AlayaDBTTFTModel(cost)

    curves = {"w/o reuse": [], "LMCache": [], "AlayaDB": []}
    breakdowns = {}
    for length in CONTEXT_LENGTHS:
        curves["w/o reuse"].append(no_reuse.ttft_for_length(length).total_seconds)
        lmcache_ttft = lmcache.ttft_for_length(length)
        curves["LMCache"].append(lmcache_ttft.total_seconds)
        alaya_ttft = alayadb.ttft_for_length(length)
        curves["AlayaDB"].append(alaya_ttft.total_seconds)
        if length in (40_000, 200_000):
            breakdowns[length] = {"LMCache": lmcache_ttft, "AlayaDB": alaya_ttft}

    # validate the LMCache load mechanism on a real (small) snapshot
    rng = np.random.default_rng(0)
    small_tokens = 2048
    keys = {layer: rng.normal(size=(8, small_tokens, 128)).astype(np.float32) for layer in range(2)}
    values = {layer: rng.normal(size=(8, small_tokens, 128)).astype(np.float32) for layer in range(2)}
    snapshot = KVSnapshot(tokens=list(range(small_tokens)), keys=keys, values=values)
    real_store = LMCacheStore(cost)
    stored_bytes = real_store.store("ctx", snapshot)
    _, _, load_seconds = real_store.load("ctx")
    compression_ratio = stored_bytes / snapshot.nbytes

    return curves, breakdowns, compression_ratio, load_seconds


def test_fig10_ttft(benchmark):
    curves, breakdowns, compression_ratio, real_load_seconds = run_once(benchmark, _sweep_ttft)

    lines = ["--- Figure 10(a): TTFT (seconds) vs context length ---"]
    for name, values in curves.items():
        lines.append(format_series(f"{name:10s}", CONTEXT_LENGTHS, [round(v, 3) for v in values]))

    rows = []
    for length, breakdown in breakdowns.items():
        for system, ttft in breakdown.items():
            rows.append([f"{length // 1000}K", system, round(ttft.load_seconds, 3), round(ttft.decode_seconds, 3)])
    lines.append("")
    lines.append(
        format_table(
            ["context", "system", "load (s)", "decode (s)"],
            rows,
            title="--- Figure 10(b): latency breakdown (load vs decode) ---",
        )
    )
    lines.append("")
    lines.append(
        f"Real LMCache store on a 2K-token snapshot: compression ratio {compression_ratio:.2f}, "
        f"modelled load {real_load_seconds:.3f}s"
    )
    emit(EXPERIMENT, "\n".join(lines))

    no_reuse = np.asarray(curves["w/o reuse"])
    lmcache = np.asarray(curves["LMCache"])
    alayadb = np.asarray(curves["AlayaDB"])

    # reuse beats recomputation by 2-3 orders of magnitude (paper: 2-3 orders)
    assert np.all(no_reuse / alayadb > 100)
    # AlayaDB is 19-42x faster than LMCache in the paper; require >5x here
    assert np.all(lmcache / alayadb > 5)
    # LMCache load grows linearly with context length; AlayaDB stays nearly flat
    assert lmcache[-1] / lmcache[0] > 3.5
    assert alayadb[-1] / alayadb[0] < 1.5
    # the breakdown shows loading dominates LMCache's TTFT at 200K
    breakdown_200k = breakdowns[200_000]["LMCache"]
    assert breakdown_200k.load_seconds > breakdown_200k.decode_seconds
    # the real compressed snapshot is meaningfully smaller than raw fp32
    assert compression_ratio < 0.5
