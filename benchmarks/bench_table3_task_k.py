"""Table 3 — different tasks require different numbers of critical tokens.

The paper measures, per LongBench task, the smallest fixed top-k a sparse
attention query must retrieve to match full-attention accuracy: between 20
tokens (TriviaQA, 0.24% of the context) and 350 tokens (Qasper, 9.67%).  The
reproduction generates one synthetic workload per task with the task's
critical-token density and measures the same statistic.
"""

from __future__ import annotations

from benchmarks.common import emit, run_once
from repro.analysis.recovery import required_k_for_accuracy
from repro.analysis.reporting import format_table
from repro.workloads.generator import generate_workload
from repro.workloads.longbench import LONGBENCH_TASKS

EXPERIMENT = "Table 3: required k per task"


def _measure_required_k():
    measurements = {}
    for name, task in LONGBENCH_TASKS.items():
        workload = generate_workload(task.spec)
        measured_k = required_k_for_accuracy(workload, target_recovery=0.9)
        measurements[name] = (task, measured_k, workload.spec.context_length)
    return measurements


def test_table3_required_k_per_task(benchmark):
    measurements = run_once(benchmark, _measure_required_k)

    rows = []
    for name, (task, measured_k, context_length) in measurements.items():
        rows.append(
            [
                name,
                task.category,
                context_length,
                task.paper_k,
                f"{task.paper_proportion * 100:.2f}%",
                measured_k,
                f"{measured_k / context_length * 100:.2f}%",
            ]
        )
    table = format_table(
        ["task", "category", "context len", "paper k", "paper %", "measured k", "measured %"],
        rows,
        title="Paper Table 3: the k needed to match full attention ranges from 20 (0.24%) to 350 (9.67%).",
    )
    emit(EXPERIMENT, table)

    measured = {name: k for name, (_, k, _) in measurements.items()}
    # shape check: the ordering of task difficulty matches the paper
    assert measured["Qasper"] > measured["QMSum"] > measured["TriviaQA"]
    assert measured["PassageR"] > measured["LCC"]
    # every measured k is within a factor ~2.5 of the paper's value
    for name, (task, k, _) in measurements.items():
        assert k <= task.paper_k * 2.5, name
        assert k >= task.paper_k / 2.5, name
