"""Figure 5 — the number of critical tokens varies widely across heads.

The paper samples heads of Llama-3-8B-Instruct-262k on the ∞-Bench KV
retrieval task and plots (red) how many tokens each head needs to reach a 90%
recovery ratio, against (blue) how many tokens a DIPR query with a fixed beta
selects for the same head.  The reproduction generates a Retr.KV-style
workload whose heads are planted with log-uniformly varying critical-token
counts and prints both series per (layer, head); the DIPR count should track
the 90%-recovery count across orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import emit, run_once
from repro.analysis.recovery import head_recovery_profile
from repro.analysis.reporting import format_table
from repro.query.types import beta_from_alpha
from repro.workloads.generator import ScoringMode, WorkloadSpec, generate_workload

EXPERIMENT = "Figure 5: critical tokens per head"


def _build_profiles():
    spec = WorkloadSpec(
        name="fig5",
        context_length=8192,
        num_layers=2,
        num_query_heads=16,
        num_kv_heads=8,
        head_dim=32,
        num_decode_steps=4,
        num_evidence_tokens=2,
        critical_fraction_low=0.0008,
        critical_fraction_high=0.25,
        scoring=ScoringMode.NEEDLE,
        seed=55,
    )
    workload = generate_workload(spec)
    beta = beta_from_alpha(0.012, spec.head_dim)
    profiles = head_recovery_profile(workload, beta=beta, recovery_target=0.9)
    return workload, beta, profiles


def test_fig5_critical_tokens_per_head(benchmark):
    workload, beta, profiles = run_once(benchmark, _build_profiles)

    rows = []
    ratios = []
    for index, profile in enumerate(profiles):
        ratio = profile.dipr_selected / max(profile.tokens_for_90pct, 1.0)
        ratios.append(ratio)
        rows.append(
            [
                f"L{profile.layer}H{profile.kv_head}",
                profile.planted_critical,
                round(profile.tokens_for_90pct, 1),
                round(profile.dipr_selected, 1),
                round(ratio, 2),
            ]
        )
    recovery_counts = np.asarray([p.tokens_for_90pct for p in profiles])
    spread = recovery_counts.max() / max(recovery_counts.min(), 1.0)

    table = format_table(
        ["head", "planted critical", "tokens for 90% recovery", f"DIPR(beta={beta:.1f}) selected", "DIPR / 90%"],
        rows,
        title=(
            "Paper: per-head token requirements vary by orders of magnitude (53 .. 43K) and "
            "DIPR with one global beta tracks them; full attention needs the whole context."
        ),
    )
    table += (
        f"\nSpread of per-head 90%-recovery counts: {spread:.1f}x "
        f"(paper observes ~800x between extreme heads on the real model)"
    )
    emit(EXPERIMENT, table)

    # the headline claims: heads differ widely, and DIPR adapts to each head
    assert spread > 10.0
    assert 0.2 < float(np.median(ratios)) < 5.0
