"""Sharded serving — per-worker KV residency vs a single unsharded server.

The sharding story (context parallelism over the data-centric attention
decomposition) promises that a fleet of N workers can serve a long context
with each worker holding only ~1/N of the KV bytes: the router fans decode
retrieval out to shard owners and merges the per-shard partial attentions
exactly via log-sum-exp.  This harness pins the memory claim down:

* **unsharded** — one :class:`InferenceService` ingests the document and
  serves every prompt; its ``BufferManager.used_bytes`` peak is the whole
  context (KV + indexes) resident on one box;
* **sharded (N=4)** — a :class:`ShardedContextRouter` over a 4-worker
  :class:`WorkerGroup` sharing one storage backend; each worker owns one
  shard.  The peak ``used_bytes`` of the busiest worker must stay within
  ~(1/N + slack) of the unsharded peak — the slack covers block-aligned
  shard boundaries (the last shard absorbs the remainder) and per-shard
  index overhead.

Both paths must also produce *identical* token streams for every prompt —
the memory win is only interesting if the answers don't change.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, run_once, smoke_mode, write_bench_json
from repro.analysis.reporting import format_table
from repro.core.config import AlayaDBConfig
from repro.core.service import InferenceService
from repro.llm.model import ModelConfig, TransformerModel
from repro.sharding import ShardedContextRouter, WorkerGroup

EXPERIMENT = "Sharded serving (per-worker KV residency vs unsharded)"

SMOKE = smoke_mode()  # BENCH_SMOKE=1: shrink the context for a quick CI run
NUM_WORKERS = 4
NUM_SHARDS = 4
DOC_REPEATS = 10 if SMOKE else 40
NUM_REQUESTS = 3 if SMOKE else 6
MAX_NEW_TOKENS = 3 if SMOKE else 5
# Shard boundaries align down to coarse_block_size, so the last shard can be
# up to one block wider than n/N; a shard also carries its own fine/coarse
# index blocks. Short smoke contexts amplify both effects.
SLACK = 0.18 if SMOKE else 0.10

DOCUMENT = "the quick brown fox jumps over the lazy dog in the library. " * DOC_REPEATS
SUFFIXES = [
    "what did the fox do?",
    "where did it happen?",
    " and then, unexpectedly,",
]

BASE_CONFIG = dict(
    short_context_threshold=128,
    coarse_block_size=32,
    coarse_num_blocks=4,
    window_initial_tokens=8,
    window_last_tokens=24,
    prefill_chunk_tokens=64,
    gpu_memory_budget_bytes=1024,  # forces the DIPR sparse-decode path
)


def _model() -> TransformerModel:
    return TransformerModel(
        ModelConfig(dim=32, num_layers=2, num_query_heads=4, num_kv_heads=2, hidden_dim=64, seed=7)
    )


def _prompts() -> list[str]:
    return [DOCUMENT + SUFFIXES[i % len(SUFFIXES)] for i in range(NUM_REQUESTS)]


def _run_unsharded(prompts):
    model = _model()
    service = InferenceService(model, AlayaDBConfig(**BASE_CONFIG))
    service.db.prefill_and_import(model, DOCUMENT, context_id="ctx")
    peak = service.db.buffer_manager.used_bytes
    tokens = []
    start = time.perf_counter()
    for prompt in prompts:
        result, _ = service.serve(prompt, max_new_tokens=MAX_NEW_TOKENS)
        tokens.append(result.generated_tokens)
        peak = max(peak, service.db.buffer_manager.used_bytes)
    return service, peak, tokens, time.perf_counter() - start


def _run_sharded(prompts):
    model = _model()
    group = WorkerGroup(model, config=AlayaDBConfig(**BASE_CONFIG), num_workers=NUM_WORKERS)
    router = ShardedContextRouter(model, group=group)
    router.ingest(DOCUMENT, context_id="ctx", num_shards=NUM_SHARDS)
    peaks = {w.name: w.db.buffer_manager.used_bytes for w in group.workers}
    tokens = []
    start = time.perf_counter()
    for prompt in prompts:
        result = router.generate("ctx", prompt=prompt, max_new_tokens=MAX_NEW_TOKENS)
        tokens.append(result.generated_tokens)
        for worker in group.workers:
            peaks[worker.name] = max(peaks[worker.name], worker.db.buffer_manager.used_bytes)
    return router, peaks, tokens, time.perf_counter() - start


def _sweep():
    prompts = _prompts()
    _, unsharded_peak, unsharded_tokens, unsharded_seconds = _run_unsharded(prompts)
    router, worker_peaks, sharded_tokens, sharded_seconds = _run_sharded(prompts)
    return {
        "unsharded_peak": unsharded_peak,
        "unsharded_tokens": unsharded_tokens,
        "unsharded_seconds": unsharded_seconds,
        "worker_peaks": worker_peaks,
        "sharded_tokens": sharded_tokens,
        "sharded_seconds": sharded_seconds,
        "report": router.memory_report(),
    }


def test_sharded_serving(benchmark):
    out = run_once(benchmark, _sweep)

    unsharded_peak = out["unsharded_peak"]
    worker_peaks = out["worker_peaks"]
    max_worker_peak = max(worker_peaks.values())
    ratio = max_worker_peak / max(unsharded_peak, 1)
    bound = 1.0 / NUM_SHARDS + SLACK

    rows = [
        ["unsharded (1 server)", f"{unsharded_peak}", "1.00", f"{out['unsharded_seconds']:.2f}"],
        *[
            [name, f"{peak}", f"{peak / max(unsharded_peak, 1):.2f}", ""]
            for name, peak in sorted(worker_peaks.items())
        ],
        ["busiest worker", f"{max_worker_peak}", f"{ratio:.2f}", f"{out['sharded_seconds']:.2f}"],
    ]
    text = "\n".join(
        [
            format_table(
                ["server", "peak used_bytes", "vs unsharded", "serve (s)"],
                rows,
                title=f"--- peak BufferManager.used_bytes, {NUM_SHARDS} shards / {NUM_WORKERS} workers ---",
            ),
            "",
            f"busiest worker holds {ratio:.2f}x of the unsharded peak "
            f"(bound: 1/{NUM_SHARDS} + {SLACK:.2f} slack = {bound:.2f})",
        ]
    )
    emit(EXPERIMENT, text)

    write_bench_json(
        "sharded_serving",
        metrics={
            "unsharded_peak_used_bytes": unsharded_peak,
            "worker_peak_used_bytes": dict(sorted(worker_peaks.items())),
            "max_worker_peak_used_bytes": max_worker_peak,
            "max_worker_to_unsharded_ratio": ratio,
            "ratio_bound": bound,
            "unsharded_serve_seconds": out["unsharded_seconds"],
            "sharded_serve_seconds": out["sharded_seconds"],
        },
        config={
            "num_workers": NUM_WORKERS,
            "num_shards": NUM_SHARDS,
            "doc_repeats": DOC_REPEATS,
            "num_requests": NUM_REQUESTS,
            "max_new_tokens": MAX_NEW_TOKENS,
            "slack": SLACK,
            **BASE_CONFIG,
        },
    )

    # the answers are unchanged: every prompt's token stream is identical
    assert out["sharded_tokens"] == out["unsharded_tokens"]
    # the memory claim: the busiest worker stays within ~1/N of one big server
    assert max_worker_peak <= bound * unsharded_peak, (
        f"busiest worker used {max_worker_peak}B = {ratio:.2f}x of the "
        f"unsharded peak {unsharded_peak}B (bound {bound:.2f})"
    )
    # every worker actually holds its shard resident (the fleet served, not one box)
    assert all(peak > 0 for peak in worker_peaks.values())
